"""Tunables for the RPC/RDMA transports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RpcRdmaConfig"]


@dataclass(frozen=True)
class RpcRdmaConfig:
    """Transport parameters shared by both designs.

    ``inline_threshold`` is the Fig 2 inline size: RPC messages that fit
    travel inside the RDMA Send; larger bodies become long calls/replies
    via chunks.  ``credits`` is the flow-control field's grant — also
    the number of pre-posted receive buffers per connection and the cap
    on a client's outstanding calls.

    The resilience knobs govern the client's recovery state machine.
    ``reply_timeout_us = None`` (the default) disables the retransmit
    timer entirely — no timer events are scheduled, so a fault-free run
    is event-for-event identical to a transport without the recovery
    layer.  Reconnection on a dead QP works even without timers because
    flushed work requests wake the waiting calls.

    The hardening knobs all default to *off* (``None``/``False``) and
    are inert when unset: no lease timers are scheduled, no quota is
    enforced, no misbehavior is scored and no crypt cost is charged, so
    default-config figure tables are bit-identical with or without this
    code.  ``lease_timeout_us`` bounds how long a Read-Read exposure
    may await its ``RDMA_DONE`` before the server reclaims (and
    deregisters — a sanitizer-visible epoch bump) the region.
    ``exposure_quota_bytes`` caps one client's concurrently exposed
    bytes; admission past the cap evicts that client's oldest pending
    exposure first.  The misbehavior thresholds drive the WARN →
    throttle → quarantine escalation in
    :class:`repro.security.policy.SecurityPolicy`, and ``aes_payload``
    charges ``cpu.crypt`` per payload byte on both ends.
    """

    inline_threshold: int = 1024
    credits: int = 32
    max_transfer_bytes: int = 1 << 20          # rsize/wsize ceiling
    bounce_pool_entries: int = 32              # Read-Read client bounce buffers
    bounce_buffer_bytes: int = 1 << 20
    per_op_cpu_us: float = 3.0                 # transport bookkeeping per op/side
    done_handler_cpu_us: float = 2.0           # Read-Read server DONE processing
    #: per-call reply timeout; None = no retransmit timer (zero events).
    reply_timeout_us: Optional[float] = None
    max_retransmits: int = 6                   # per connection attempt
    max_reply_timeout_us: float = 2_000_000.0  # backoff ceiling
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1                # ± fraction of each delay
    max_reconnects: int = 4                    # redials per call before giving up
    reconnect_backoff_us: float = 1_000.0      # base delay before redialing
    #: Read-Read exposure lease; None = exposures await DONE forever.
    lease_timeout_us: Optional[float] = None
    #: per-client cap on concurrently exposed bytes; None = unlimited.
    exposure_quota_bytes: Optional[int] = None
    #: misbehavior score thresholds; None disables that escalation stage.
    misbehavior_warn: Optional[int] = None
    misbehavior_throttle: Optional[int] = None
    misbehavior_quarantine: Optional[int] = None
    throttle_delay_us: float = 50.0            # added per call while throttled
    #: encrypt payloads end-to-end, charging cpu.crypt per byte both ends.
    aes_payload: bool = False

    def __post_init__(self):
        if self.inline_threshold < 256:
            raise ValueError("inline threshold unrealistically small")
        if self.credits < 1:
            raise ValueError("need at least one credit")
        if self.max_transfer_bytes < self.inline_threshold:
            raise ValueError("max transfer below inline threshold")
        if self.bounce_buffer_bytes < self.max_transfer_bytes:
            raise ValueError("bounce buffers must cover max transfer size")
        if self.reply_timeout_us is not None and self.reply_timeout_us <= 0:
            raise ValueError("reply timeout must be positive (or None)")
        if self.max_retransmits < 0 or self.max_reconnects < 0:
            raise ValueError("retry limits must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.lease_timeout_us is not None and self.lease_timeout_us <= 0:
            raise ValueError("lease timeout must be positive (or None)")
        if self.exposure_quota_bytes is not None and self.exposure_quota_bytes <= 0:
            raise ValueError("exposure quota must be positive (or None)")
        for name in ("misbehavior_warn", "misbehavior_throttle",
                     "misbehavior_quarantine"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None)")
        if self.throttle_delay_us < 0:
            raise ValueError("throttle delay must be non-negative")
