"""Tunables for the RPC/RDMA transports."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RpcRdmaConfig"]


@dataclass(frozen=True)
class RpcRdmaConfig:
    """Transport parameters shared by both designs.

    ``inline_threshold`` is the Fig 2 inline size: RPC messages that fit
    travel inside the RDMA Send; larger bodies become long calls/replies
    via chunks.  ``credits`` is the flow-control field's grant — also
    the number of pre-posted receive buffers per connection and the cap
    on a client's outstanding calls.
    """

    inline_threshold: int = 1024
    credits: int = 32
    max_transfer_bytes: int = 1 << 20          # rsize/wsize ceiling
    bounce_pool_entries: int = 32              # Read-Read client bounce buffers
    bounce_buffer_bytes: int = 1 << 20
    per_op_cpu_us: float = 3.0                 # transport bookkeeping per op/side
    done_handler_cpu_us: float = 2.0           # Read-Read server DONE processing

    def __post_init__(self):
        if self.inline_threshold < 256:
            raise ValueError("inline threshold unrealistically small")
        if self.credits < 1:
            raise ValueError("need at least one credit")
        if self.max_transfer_bytes < self.inline_threshold:
            raise ValueError("max transfer below inline threshold")
        if self.bounce_buffer_bytes < self.max_transfer_bytes:
            raise ValueError("bounce buffers must cover max transfer size")
