"""RPC/RDMA credit-based flow control (the Fig 2 credits field).

The server grants the client a fixed number of request credits — the
number of receive buffers it has pre-posted on the connection.  A
client that respects its grant can never trigger receiver-not-ready
retries.  Replies refresh the grant; the manager also lets the server
*revoke* credit (shrink the grant) under memory pressure, the
future-work knob §7 mentions.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Container, Counter, Simulator

__all__ = ["CreditManager"]


class CreditManager:
    """Client-side gate on outstanding requests."""

    def __init__(self, sim: Simulator, initial_grant: int, name: str = "credits"):
        if initial_grant < 1:
            raise ValueError("initial credit grant must be >= 1")
        self.sim = sim
        self.name = name
        self.grant = initial_grant
        self._pool = Container(sim, capacity=float("inf"), init=initial_grant,
                               name=f"{name}.pool")
        self.waits = Counter(f"{name}.waits")
        self.outstanding_peak = 0
        self._outstanding = 0
        self._deficit = 0

    @property
    def available(self) -> float:
        return self._pool.level

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def acquire(self) -> Generator:
        """Process: take one credit, blocking while the grant is exhausted."""
        if self._pool.level <= 0:
            self.waits.add()
        yield self._pool.get(1)
        self._outstanding += 1
        self.outstanding_peak = max(self.outstanding_peak, self._outstanding)
        san = self.sim.sanitizer
        if san is not None:
            san.check_credits(self)

    def release(self, new_grant: int | None = None) -> None:
        """Return one credit; optionally apply a refreshed grant size.

        A grown grant releases extra credits immediately; a shrunken
        grant withholds refunds until the deficit is absorbed.
        """
        if self._outstanding <= 0:
            san = self.sim.sanitizer
            if san is not None:
                san.credit_underflow(self)
            raise RuntimeError(f"{self.name}: credit released but none outstanding")
        self._outstanding -= 1
        refund = 1
        if new_grant is not None and new_grant != self.grant:
            refund += new_grant - self.grant
            self.grant = new_grant
        refund -= self._deficit
        self._deficit = 0
        if refund > 0:
            self._pool.put(refund)
        elif refund < 0:
            self._deficit = -refund
        san = self.sim.sanitizer
        if san is not None:
            san.check_credits(self)
