"""Callaghan's original Read-Read design (§3, critiqued in §4.1).

All bulk data moves by RDMA Read.  For NFS READ and long replies the
*server* registers its buffers with remote-read rights and returns their
steering tags as read chunks in the RPC reply; the client issues the
RDMA Reads, then sends ``RDMA_DONE`` so the server can deregister and
release.  Faithfully modeled liabilities:

* **Exposed server stags** — every bulk reply leaves windows in the
  server TPT that any guessed 32-bit stag could hit
  (:meth:`ReadReadServer.exposed_regions` is the audit hook).
* **Client-controlled lifetime** — buffers stay pinned until the DONE
  arrives; a malicious or crashed client pins them forever
  (:attr:`ReadReadServer.pending_done`).
* **Client data copy** — the client reads into pre-registered bounce
  buffers and memcpy's to the application (no per-op client
  registration, but burning client CPU — the 24 % line in Fig 6).
* **Read serialisation** — the client's RDMA Reads are served one at a
  time by the server HCA's per-QP read engine and capped by IRD/ORD.
* **Extra messages/interrupts** — the DONE send costs wire, server CPU
  and a server interrupt per bulk operation.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.base import (
    DATA_CHUNK_POSITION,
    RpcRdmaClientBase,
    RpcRdmaServerBase,
    TransportError,
)
from repro.core.chunks import ChunkList, ReadChunk
from repro.core.header import MessageType, RpcRdmaHeader
from repro.core.strategies import RegisteredRegion
from repro.ib.memory import AccessFlags
from repro.rpc.msg import RpcCall, RpcReply, frame_message, unframe_message
from repro.sim import Counter, Store

__all__ = ["ReadReadClient", "ReadReadServer"]


class ReadReadClient(RpcRdmaClientBase):
    """Client half of the Read-Read design (bounce buffers + copies)."""

    design = "read-read"

    def __init__(self, node, qp, config, strategy, name=""):
        super().__init__(node, qp, config, strategy, name)
        self.bounce_pool: Store = Store(self.sim, name=f"{self.name}.bounce")
        self.dones_sent = Counter(f"{self.name}.dones")
        self.bounce_copies_bytes = Counter(f"{self.name}.bounce_copy_bytes")

    def _setup_pools(self) -> Generator:
        yield from super()._setup_pools()
        # Pre-registered bounce buffers: the Read-Read client never
        # registers per-operation — it pays in copies instead.
        tpt = self.node.hca.tpt
        for _ in range(self.config.bounce_pool_entries):
            buffer = self.node.arena.alloc(self.config.bounce_buffer_bytes)
            mr = yield from tpt.register(buffer, AccessFlags.LOCAL_WRITE)
            from repro.ib.verbs import Segment

            self.bounce_pool.put(
                RegisteredRegion(
                    buffer=buffer,
                    segments=[Segment(mr.stag, buffer.addr, buffer.length)],
                    access=AccessFlags.LOCAL_WRITE,
                    owned=True,
                    mr=mr,
                )
            )

    def _prepare_reply_resources(self, call: RpcCall, chunks: ChunkList, ctx: dict) -> Generator:
        # Nothing to advertise: the server will expose *its* buffers in
        # the reply — the defining (and insecure) move of this design.
        return
        yield  # pragma: no cover

    def _handle_reply(self, header: RpcRdmaHeader, ctx: dict) -> Generator:
        fetched_chunks = False
        # Long reply: the entire RPC message is a position-0 read chunk
        # in the server's memory; fetch it.
        if header.mtype is MessageType.RDMA_NOMSG:
            body = header.chunks.read_chunks_at(0)
            if not body:
                raise TransportError(f"{self.name}: NOMSG reply without chunks")
            length = sum(c.length for c in body)
            message = yield from self._fetch_via_bounce([c.segment for c in body], length)
            fetched_chunks = True
        elif header.mtype is MessageType.RDMA_MSG:
            message = header.rpc_message
        else:
            raise TransportError(f"{self.name}: unexpected reply type {header.mtype}")
        rpc_header, inline_payload = unframe_message(message)
        reply = RpcReply.decode(rpc_header)
        reply.read_payload = inline_payload
        # READ data chunks: server-exposed; client issues the RDMA Reads.
        data = header.chunks.read_chunks_at(DATA_CHUNK_POSITION)
        if data:
            length = sum(c.length for c in data)
            reply.read_payload = yield from self._fetch_via_bounce(
                [c.segment for c in data], length
            )
            fetched_chunks = True
        if fetched_chunks:
            # Tell the server it may free its exposed buffers.
            yield from self._send_done(header.xid)
        return reply

    def _fetch_via_bounce(self, segments, length: int) -> Generator:
        """RDMA-Read server chunks into a bounce buffer, copy out."""
        if length > self.config.bounce_buffer_bytes:
            raise TransportError(
                f"{self.name}: {length} bytes exceed bounce buffer size"
            )
        bounce: RegisteredRegion = yield self.bounce_pool.get()
        try:
            yield from self.fetch_chunks(segments, bounce, length)
            yield from self._crypt(length)
            # The copy the Read-Write design eliminates (Fig 6's CPU gap):
            # bounce buffer -> application memory.
            yield from self.node.cpu.copy(length)
            self.bounce_copies_bytes.add(length)
            return bounce.peek(length)
        finally:
            self.bounce_pool.put(bounce)

    def _send_done(self, xid: int) -> Generator:
        done = RpcRdmaHeader(
            xid=xid,
            credits=self.config.credits,
            mtype=MessageType.RDMA_DONE,
        )
        yield from self.send_header(done)
        self.dones_sent.add()


class ReadReadServer(RpcRdmaServerBase):
    """Server half of the Read-Read design (exposes buffers, awaits DONE)."""

    design = "read-read"

    def __init__(self, node, qp, config, strategy, name="", credit_policy=None,
                 srq=None, policy=None):
        super().__init__(node, qp, config, strategy, name,
                         credit_policy=credit_policy, srq=srq, policy=policy)
        # DONE messages consume receives beyond the credit grant; post
        # double the receives so bulk-heavy workloads never go RNR.
        # (In shared-pool mode the wiring layer sizes the pool instead.)
        if self.recv_pool is not None:
            self.recv_pool.count = config.credits * 2
        #: xid -> regions awaiting the client's RDMA_DONE.
        self.pending_done: dict[int, list[RegisteredRegion]] = {}
        self.dones_received = Counter(f"{self.name}.dones")
        self.exposed_bytes_peak = 0
        self.lease_reclaims = Counter(f"{self.name}.lease_reclaims")
        self.quota_evictions = Counter(f"{self.name}.quota_evictions")

    def _respond(self, ctx: dict, reply: RpcReply) -> Generator:
        reply_chunks = ChunkList()
        reply_bytes = reply.encode()
        inline_payload: Optional[bytes] = None
        exposed: list[RegisteredRegion] = []
        payload = reply.read_payload

        if payload:
            if 4 + len(reply_bytes) + len(payload) + 64 <= self.config.inline_threshold:
                inline_payload = payload
            else:
                # Expose a server buffer for the client to RDMA Read —
                # the security hole §4.1 identifies.
                region = yield from self.strategy.acquire(
                    len(payload), AccessFlags.REMOTE_READ
                )
                yield from self._crypt(len(payload))
                region.fill(payload)
                exposed.append(region)
                from repro.core.base import slice_segments

                reply_chunks.read_chunks.extend(
                    ReadChunk(position=DATA_CHUNK_POSITION, segment=seg)
                    for seg in slice_segments(region.segments, 0, len(payload))
                )

        message = frame_message(reply_bytes, inline_payload)
        lane_fields = self._lane_reply_fields(ctx)
        header = RpcRdmaHeader(
            xid=reply.xid,
            credits=self.grant(),
            mtype=MessageType.RDMA_MSG,
            chunks=reply_chunks,
            rpc_message=message,
            **lane_fields,
        )
        if header.wire_size > self.config.inline_threshold:
            # RPC long reply, Read-Read style: expose the message itself.
            region = yield from self.strategy.acquire(len(message), AccessFlags.REMOTE_READ)
            yield from self._crypt(len(message))
            region.fill(message)
            exposed.append(region)
            reply_chunks.read_chunks = [
                *(ReadChunk(position=0, segment=seg) for seg in region.segments),
                *(c for c in reply_chunks.read_chunks if c.position != 0),
            ]
            header = RpcRdmaHeader(
                xid=reply.xid,
                credits=self.grant(),
                mtype=MessageType.RDMA_NOMSG,
                chunks=reply_chunks,
                rpc_message=b"",
                **lane_fields,
            )
        if exposed:
            # Lifetime now rests with the client: nothing is released
            # until (unless!) its RDMA_DONE arrives.  Merge, don't
            # overwrite — a DRC replay re-exposes under the same xid and
            # the single DONE must release both generations.
            self.pending_done.setdefault(reply.xid, []).extend(exposed)
            self.exposed_bytes_peak = max(
                self.exposed_bytes_peak,
                sum(r.length for rs in self.pending_done.values() for r in rs),
            )
            san = self.sim.sanitizer
            if san is not None:
                san.advertise(self.node.hca.tpt.name, reply.xid,
                              reply_chunks)
            if self.config.exposure_quota_bytes is not None:
                yield from self._enforce_quota(reply.xid)
            if self.config.lease_timeout_us is not None:
                self.sim.process(self._lease_timer(reply.xid),
                                 name=f"{self.name}.lease")
        yield from self.send_header(header)

    # -- mitigation machinery ----------------------------------------------
    def _enforce_quota(self, current_xid: int) -> Generator:
        """Admission control: this connection's exposed bytes must fit
        ``exposure_quota_bytes``.  While over, the *oldest* pending
        exposure (never the one just admitted) is reclaimed — the
        misbehaving client loses its own stalest window, well-behaved
        clients are untouched because their DONEs keep them under quota.
        """
        quota = self.config.exposure_quota_bytes
        while len(self.pending_done) > 1:
            total = sum(r.length for rs in self.pending_done.values()
                        for r in rs)
            if total <= quota:
                return
            oldest = next(x for x in self.pending_done if x != current_xid)
            regions = self.pending_done.pop(oldest)
            nbytes = sum(r.length for r in regions)
            self.quota_evictions.add(nbytes)
            san = self.sim.sanitizer
            if san is not None:
                san.retire(self.node.hca.tpt.name, oldest)
            if self.policy is not None:
                self.policy.record_quota_eviction(self.client_id, nbytes)
            for region in regions:
                yield from self.strategy.release(region)

    def _lease_timer(self, xid: int) -> Generator:
        """Deadline-based reclamation: if the DONE has not arrived when
        the lease expires, deregister the windows (a sanitizer-visible
        epoch bump) and score the client."""
        yield self.sim.timeout(self.config.lease_timeout_us)
        regions = self.pending_done.pop(xid, None)
        if regions is None:
            return  # DONE (or quota/disconnect reclaim) beat the deadline
        nbytes = sum(r.length for r in regions)
        self.lease_reclaims.add(nbytes)
        san = self.sim.sanitizer
        if san is not None:
            san.retire(self.node.hca.tpt.name, xid)
        if self.policy is not None:
            self.policy.record_lease_reclaim(self.client_id, nbytes)
        for region in regions:
            yield from self.strategy.release(region)

    def _handle_done(self, header: RpcRdmaHeader) -> Generator:
        yield from self.node.cpu.consume(self.config.done_handler_cpu_us)
        self.dones_received.add()
        regions = self.pending_done.pop(header.xid, None)
        if regions is None:
            return  # duplicate/stray DONE: ignore, as a robust server must
        san = self.sim.sanitizer
        if san is not None:
            san.retire(self.node.hca.tpt.name, header.xid)
        for region in regions:
            yield from self.strategy.release(region)

    def _reclaim_on_disconnect(self) -> Generator:
        """Release every window awaiting a DONE that will never come."""
        while self.pending_done:
            xid, regions = self.pending_done.popitem()
            san = self.sim.sanitizer
            if san is not None:
                san.retire(self.node.hca.tpt.name, xid)
            for region in regions:
                yield from self.strategy.release(region)

    # -- audit hooks ---------------------------------------------------------
    def exposed_regions(self) -> list[RegisteredRegion]:
        """Server windows currently readable by the client (attack surface)."""
        return [r for regions in self.pending_done.values() for r in regions]

    @property
    def pending_done_count(self) -> int:
        return len(self.pending_done)
