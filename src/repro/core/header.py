"""The RPC/RDMA header of Fig 2.

Transaction XID, RPC/RDMA version, credit (flow-control) field, message
type, then the three chunk lists, then — for ``RDMA_MSG`` — the RPC
message proper.  ``RDMA_NOMSG`` means the RPC message body travels as
read chunks (the long call / long reply); ``RDMA_DONE`` is the
Read-Read design's completion signal that lets the server release its
exposed buffers.

Version 2 is the QP-multiplexing extension (DESIGN.md §15): when many
mounts share one connection, each call carries its virtual *lane* id
(the mount's identity on the shared QP), a per-lane sequence number for
FIFO auditing, and — on replies — a per-lane credit grant carved out of
the connection's window.  Version 2 words are written only when
``lane`` is set, so non-muxed traffic stays byte-for-byte version 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.chunks import ChunkList
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = ["MessageType", "RpcRdmaHeader", "RPC_RDMA_VERSION",
           "RPC_RDMA_VERSION_MUX"]

RPC_RDMA_VERSION = 1
#: version advertised by connections carrying multiplexed lanes.
RPC_RDMA_VERSION_MUX = 2


class MessageType(enum.IntEnum):
    RDMA_MSG = 0    # RPC call/reply follows inline
    RDMA_NOMSG = 1  # RPC body entirely in chunks
    RDMA_MSGP = 2   # padded variant (alignment optimisation)
    RDMA_DONE = 3   # client signals chunk consumption (Read-Read only)


@dataclass
class RpcRdmaHeader:
    """One transport header, always sent inline via RDMA Send."""

    xid: int
    credits: int
    mtype: MessageType
    chunks: ChunkList = field(default_factory=ChunkList)
    rpc_message: bytes = b""
    #: virtual lane (mount id) on a shared QP; ``None`` on dedicated
    #: connections, which keeps the wire encoding at version 1.
    lane: Optional[int] = None
    #: per-lane send sequence number (FIFO audit, version 2 only).
    lane_seq: int = 0
    #: per-lane credit grant on replies (version 2 only); 0 on calls.
    lane_credits: int = 0

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.u32(self.xid)
        enc.u32(RPC_RDMA_VERSION_MUX if self.lane is not None
                else RPC_RDMA_VERSION)
        enc.u32(self.credits)
        enc.u32(int(self.mtype))
        if self.lane is not None:
            enc.u32(self.lane)
            enc.u32(self.lane_seq)
            enc.u32(self.lane_credits)
        self.chunks.encode(enc)
        if self.mtype in (MessageType.RDMA_MSG, MessageType.RDMA_MSGP):
            enc.opaque(self.rpc_message)
        return enc.take()

    @classmethod
    def decode(cls, data: bytes) -> "RpcRdmaHeader":
        dec = XdrDecoder(data)
        xid = dec.u32()
        version = dec.u32()
        if version not in (RPC_RDMA_VERSION, RPC_RDMA_VERSION_MUX):
            raise XdrError(f"unsupported RPC/RDMA version {version}")
        credits = dec.u32()
        try:
            mtype = MessageType(dec.u32())
        except ValueError as exc:
            raise XdrError(str(exc)) from None
        lane = lane_seq = lane_credits = None
        if version == RPC_RDMA_VERSION_MUX:
            lane = dec.u32()
            lane_seq = dec.u32()
            lane_credits = dec.u32()
        chunks = ChunkList.decode(dec)
        message = b""
        if mtype in (MessageType.RDMA_MSG, MessageType.RDMA_MSGP):
            message = dec.opaque()
        return cls(xid=xid, credits=credits, mtype=mtype, chunks=chunks,
                   rpc_message=message, lane=lane,
                   lane_seq=lane_seq or 0, lane_credits=lane_credits or 0)

    @property
    def wire_size(self) -> int:
        return len(self.encode())
