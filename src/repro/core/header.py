"""The RPC/RDMA header of Fig 2.

Transaction XID, RPC/RDMA version, credit (flow-control) field, message
type, then the three chunk lists, then — for ``RDMA_MSG`` — the RPC
message proper.  ``RDMA_NOMSG`` means the RPC message body travels as
read chunks (the long call / long reply); ``RDMA_DONE`` is the
Read-Read design's completion signal that lets the server release its
exposed buffers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from repro.core.chunks import ChunkList
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = ["MessageType", "RpcRdmaHeader", "RPC_RDMA_VERSION"]

RPC_RDMA_VERSION = 1


class MessageType(enum.IntEnum):
    RDMA_MSG = 0    # RPC call/reply follows inline
    RDMA_NOMSG = 1  # RPC body entirely in chunks
    RDMA_MSGP = 2   # padded variant (alignment optimisation)
    RDMA_DONE = 3   # client signals chunk consumption (Read-Read only)


@dataclass
class RpcRdmaHeader:
    """One transport header, always sent inline via RDMA Send."""

    xid: int
    credits: int
    mtype: MessageType
    chunks: ChunkList = field(default_factory=ChunkList)
    rpc_message: bytes = b""

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.u32(self.xid)
        enc.u32(RPC_RDMA_VERSION)
        enc.u32(self.credits)
        enc.u32(int(self.mtype))
        self.chunks.encode(enc)
        if self.mtype in (MessageType.RDMA_MSG, MessageType.RDMA_MSGP):
            enc.opaque(self.rpc_message)
        return enc.take()

    @classmethod
    def decode(cls, data: bytes) -> "RpcRdmaHeader":
        dec = XdrDecoder(data)
        xid = dec.u32()
        version = dec.u32()
        if version != RPC_RDMA_VERSION:
            raise XdrError(f"unsupported RPC/RDMA version {version}")
        credits = dec.u32()
        try:
            mtype = MessageType(dec.u32())
        except ValueError as exc:
            raise XdrError(str(exc)) from None
        chunks = ChunkList.decode(dec)
        message = b""
        if mtype in (MessageType.RDMA_MSG, MessageType.RDMA_MSGP):
            message = dec.opaque()
        return cls(xid=xid, credits=credits, mtype=mtype, chunks=chunks,
                   rpc_message=message)

    @property
    def wire_size(self) -> int:
        return len(self.encode())
