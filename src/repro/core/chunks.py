"""Chunk lists: the RPC/RDMA encoding of bulk-data placement (§3.1).

A *segment* names a registered buffer window by steering tag, address
and length (:class:`repro.ib.verbs.Segment`).  Chunks aggregate
segments:

* **Read chunks** — data the peer may RDMA-Read from the sender.  Each
  carries an XDR ``position`` locating it in the RPC message stream
  (position 0 = the long-call header itself).
* **Write chunks** — client-advertised windows the server RDMA-Writes
  NFS READ data into (Read-Write design only).
* **Reply chunk** — one write chunk reserved for an entire long reply
  (READDIR/READLINK).

Wire format follows RFC 5666's shape: three optional lists, each a
counted sequence; segments are (handle u32, length u32, offset u64).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ib.verbs import Segment
from repro.rpc.xdr import XdrDecoder, XdrEncoder

__all__ = ["ChunkList", "ReadChunk", "WriteChunk"]


@dataclass(frozen=True)
class ReadChunk:
    """One remotely-readable segment plus its XDR stream position."""

    position: int
    segment: Segment

    @property
    def length(self) -> int:
        return self.segment.length


@dataclass(frozen=True)
class WriteChunk:
    """A counted array of remotely-writable segments (one target window)."""

    segments: tuple[Segment, ...]

    def __init__(self, segments):
        object.__setattr__(self, "segments", tuple(segments))
        if not self.segments:
            raise ValueError("write chunk needs at least one segment")

    @property
    def capacity(self) -> int:
        return sum(s.length for s in self.segments)


def _encode_segment(enc: XdrEncoder, seg: Segment) -> None:
    enc.u32(seg.stag)
    enc.u32(seg.length)
    enc.u64(seg.addr)


def _decode_segment(dec: XdrDecoder) -> Segment:
    stag = dec.u32()
    length = dec.u32()
    addr = dec.u64()
    return Segment(stag, addr, length)


@dataclass
class ChunkList:
    """The three chunk lists carried by one RPC/RDMA header."""

    read_chunks: list[ReadChunk] = field(default_factory=list)
    write_chunks: list[WriteChunk] = field(default_factory=list)
    reply_chunk: Optional[WriteChunk] = None

    @property
    def empty(self) -> bool:
        return not (self.read_chunks or self.write_chunks or self.reply_chunk)

    def read_chunks_at(self, position: int) -> list[ReadChunk]:
        return [c for c in self.read_chunks if c.position == position]

    def read_length(self) -> int:
        return sum(c.length for c in self.read_chunks)

    def encode(self, enc: XdrEncoder) -> None:
        enc.array(
            self.read_chunks,
            lambda e, c: (e.u32(c.position), _encode_segment(e, c.segment)),
        )
        enc.array(
            self.write_chunks,
            lambda e, w: e.array(list(w.segments), _encode_segment),
        )
        enc.optional(
            self.reply_chunk,
            lambda e, w: e.array(list(w.segments), _encode_segment),
        )

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "ChunkList":
        read_chunks = dec.array(
            lambda d: ReadChunk(position=d.u32(), segment=_decode_segment(d)),
            max_items=4096,
        )
        write_chunks = [
            WriteChunk(segs)
            for segs in dec.array(
                lambda d: d.array(_decode_segment, max_items=4096), max_items=256
            )
        ]
        reply = dec.optional(lambda d: d.array(_decode_segment, max_items=4096))
        return cls(
            read_chunks=read_chunks,
            write_chunks=write_chunks,
            reply_chunk=WriteChunk(reply) if reply else None,
        )
