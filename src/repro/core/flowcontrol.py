"""Adaptive credit flow control — the paper's §7 future work, implemented.

"As part of future work, we would like to study buffer management and
credit flow control schemes to further enhance the multi-client
scalability of our NFS/RDMA design."

The RPC/RDMA credits field already lets every reply refresh the
client's grant (:mod:`repro.core.credits`).  This module supplies the
*server-side policy*: a :class:`CreditPolicy` watches the dispatcher
backlog and per-connection demand and computes the grant each reply
should carry, shrinking grants under overload (so one client cannot
bury the task queue) and growing them while the server has headroom.

The policy is deliberately simple and fully deterministic:

* the server has a global target of ``total_credits`` outstanding
  requests across all connections;
* each connection's grant is its fair share plus any unused share of
  idle connections, bounded by [min_grant, max_grant];
* when the dispatcher backlog exceeds ``backlog_high`` the total target
  halves (multiplicative decrease); it recovers by ``recover_step`` per
  grant decision once the backlog falls below ``backlog_low``
  (additive increase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Counter

__all__ = ["AdaptiveCreditPolicy", "CreditPolicy", "SrqCreditPolicy",
           "StaticCreditPolicy"]


class CreditPolicy:
    """Interface: decide the grant carried by one reply."""

    def register_connection(self, conn_id: int) -> None:
        raise NotImplementedError

    def unregister_connection(self, conn_id: int) -> None:
        raise NotImplementedError

    def grant_for(self, conn_id: int, backlog: int) -> int:
        """The credits field for the next reply on ``conn_id``."""
        raise NotImplementedError


class StaticCreditPolicy(CreditPolicy):
    """The baseline: a fixed grant per connection (the default config)."""

    def __init__(self, grant: int):
        if grant < 1:
            raise ValueError("grant must be >= 1")
        self.grant = grant

    def register_connection(self, conn_id: int) -> None:
        pass

    def unregister_connection(self, conn_id: int) -> None:
        pass

    def grant_for(self, conn_id: int, backlog: int) -> int:
        return self.grant


@dataclass
class AdaptiveCreditPolicy(CreditPolicy):
    """AIMD credit management driven by dispatcher backlog."""

    total_credits: int = 128
    min_grant: int = 2
    max_grant: int = 64
    backlog_high: int = 32
    backlog_low: int = 8
    recover_step: int = 2

    def __post_init__(self):
        if not (1 <= self.min_grant <= self.max_grant):
            raise ValueError("need 1 <= min_grant <= max_grant")
        if self.backlog_low >= self.backlog_high:
            raise ValueError("backlog_low must sit below backlog_high")
        self._target = self.total_credits
        self._connections: set[int] = set()
        self.shrinks = Counter("credits.shrinks")
        self.grows = Counter("credits.grows")

    # -- membership ---------------------------------------------------------
    def register_connection(self, conn_id: int) -> None:
        self._connections.add(conn_id)

    def unregister_connection(self, conn_id: int) -> None:
        self._connections.discard(conn_id)

    # -- policy -----------------------------------------------------------
    @property
    def target(self) -> int:
        return self._target

    def grant_for(self, conn_id: int, backlog: int) -> int:
        if backlog > self.backlog_high:
            new_target = max(
                self._target // 2,
                self.min_grant * max(1, len(self._connections)),
            )
            if new_target < self._target:
                self._target = new_target
                self.shrinks.add()
        elif backlog < self.backlog_low and self._target < self.total_credits:
            self._target = min(self.total_credits,
                               self._target + self.recover_step)
            self.grows.add()
        nconn = max(1, len(self._connections))
        fair = self._target // nconn
        return max(self.min_grant, min(self.max_grant, fair))


class SrqCreditPolicy(CreditPolicy):
    """Grants backed by a shared receive pool (:mod:`repro.ib.srq`).

    The invariant that keeps a shared pool out of RNR stalls is

        sum of outstanding grants  <=  pool entries

    so each connection's grant is its fair share of the pool, further
    halved while the dispatcher backlog is high (the same AIMD pressure
    signal as :class:`AdaptiveCreditPolicy`, but the *total* is pinned
    to physical buffer capacity instead of a free parameter).
    """

    def __init__(self, pool, min_grant: int = 1, max_grant: int = 32,
                 backlog_high: int = 64):
        if not (1 <= min_grant <= max_grant):
            raise ValueError("need 1 <= min_grant <= max_grant")
        self.pool = pool
        self.min_grant = min_grant
        self.max_grant = max_grant
        self.backlog_high = backlog_high
        self._connections: set[int] = set()
        self.shrinks = Counter("srqcredits.shrinks")

    def register_connection(self, conn_id: int) -> None:
        self._connections.add(conn_id)

    def unregister_connection(self, conn_id: int) -> None:
        self._connections.discard(conn_id)

    def grant_for(self, conn_id: int, backlog: int) -> int:
        nconn = max(1, len(self._connections))
        fair = self.pool.entries // nconn
        if backlog > self.backlog_high:
            fair //= 2
            self.shrinks.add()
        return max(self.min_grant, min(self.max_grant, fair))
