"""Registration strategies (§4.3), pluggable into either transport design.

Every bulk transfer needs local (and sometimes remote) RDMA-addressable
memory.  How that memory gets registered is the paper's main
performance lever; each strategy below implements the same three-call
interface so the transports and experiments can swap them freely:

``acquire(nbytes, access)``
    Produce a transport-owned registered buffer (server bulk buffers,
    client bounce buffers).

``wrap(buffer, access, addr, length)``
    Register caller-owned memory in place — the client direct-I/O path
    that gives the Read-Write design its zero-copy property.

``release(region)``
    Undo whichever of the above produced ``region``.

Strategies: :class:`DynamicRegistration` (register/deregister every
operation — the baseline), :class:`FmrStrategy` (Mellanox fast memory
registration with fallback), :class:`AllPhysicalStrategy` (global
steering tag, no TPT work, but no scatter/gather — transfers fragment
at physical-run boundaries), and the server buffer-registration cache
in :mod:`repro.core.regcache`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator, Optional

from repro.ib.fabric import IBNode
from repro.ib.fmr import FMRExhausted, FMRPool, FMRTooLarge
from repro.ib.memory import AccessFlags, MemoryBuffer, MemoryRegion
from repro.ib.phys import GLOBAL_STAG
from repro.ib.verbs import Segment
from repro.sim import Counter

__all__ = [
    "AllPhysicalStrategy",
    "DynamicRegistration",
    "FmrStrategy",
    "RegisteredRegion",
    "RegistrationStrategy",
]


@dataclass
class RegisteredRegion:
    """A usable, RDMA-addressable window plus how to give it back."""

    buffer: MemoryBuffer
    segments: list[Segment]
    access: AccessFlags
    owned: bool                       # buffer allocated by the strategy
    mr: Optional[MemoryRegion] = None
    handle: object = None             # strategy-private bookkeeping

    @property
    def length(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def addr(self) -> int:
        return self.segments[0].addr

    def fill(self, payload: bytes) -> None:
        offset = self.segments[0].addr - self.buffer.addr
        self.buffer.fill(payload, offset)

    def peek(self, length: Optional[int] = None) -> bytes:
        offset = self.segments[0].addr - self.buffer.addr
        return self.buffer.peek(offset, self.length if length is None else length)


class RegistrationStrategy(abc.ABC):
    """Common interface; see module docstring for the three calls."""

    name: str = "abstract"

    def __init__(self, node: IBNode):
        self.node = node
        self.acquires = Counter(f"{node.name}.{self.name}.acquires")
        self.releases = Counter(f"{node.name}.{self.name}.releases")

    @abc.abstractmethod
    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        """Process → RegisteredRegion over a freshly provided buffer."""

    @abc.abstractmethod
    def wrap(
        self,
        buffer: MemoryBuffer,
        access: AccessFlags,
        addr: Optional[int] = None,
        length: Optional[int] = None,
    ) -> Generator:
        """Process → RegisteredRegion over caller-owned memory."""

    @abc.abstractmethod
    def release(self, region: RegisteredRegion) -> Generator:
        """Process: return/deregister ``region``."""


class DynamicRegistration(RegistrationStrategy):
    """Register on every operation, deregister right after — the baseline
    whose cost Figs 7–9 quantify."""

    name = "register"

    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        buffer = self.node.arena.alloc(nbytes)
        region = yield from self.wrap(buffer, access)
        region.owned = True
        return region

    def wrap(self, buffer, access, addr=None, length=None) -> Generator:
        mr = yield from self.node.hca.tpt.register(buffer, access, addr=addr, length=length)
        self.acquires.add()
        return RegisteredRegion(
            buffer=buffer,
            segments=[Segment(mr.stag, mr.addr, mr.length)],
            access=access,
            owned=False,
            mr=mr,
        )

    def release(self, region: RegisteredRegion) -> Generator:
        yield from self.node.hca.tpt.deregister(region.mr)
        if region.owned:
            self.node.arena.free(region.buffer)
        self.releases.add()


class FmrStrategy(RegistrationStrategy):
    """Fast Memory Registration with transparent fallback (§4.3).

    Mappings larger than the pool's fixed maximum — or arriving when the
    pool is empty — fall back to regular dynamic registration, exactly
    as the paper's implementation does.
    """

    name = "fmr"

    def __init__(self, node: IBNode, pool_size: int = 512, max_bytes: int = 1 << 20):
        super().__init__(node)
        self.pool = FMRPool(node.hca.tpt, pool_size=pool_size, max_bytes=max_bytes,
                            name=f"{node.name}.fmr")
        self._fallback = DynamicRegistration(node)
        #: graceful-degradation accounting: mappings that fell back to
        #: dynamic registration (pool exhausted or mapping too large).
        self.fallbacks = Counter(f"{node.name}.fmr.fallbacks")

    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        buffer = self.node.arena.alloc(nbytes)
        region = yield from self.wrap(buffer, access)
        region.owned = True
        return region

    def wrap(self, buffer, access, addr=None, length=None) -> Generator:
        try:
            mr = yield from self.pool.map(buffer, access, addr=addr, length=length)
        except (FMRExhausted, FMRTooLarge):
            region = yield from self._fallback.wrap(buffer, access, addr=addr, length=length)
            region.handle = "fallback"
            self.fallbacks.add()
            self.acquires.add()
            return region
        self.acquires.add()
        return RegisteredRegion(
            buffer=buffer,
            segments=[Segment(mr.stag, mr.addr, mr.length)],
            access=access,
            owned=False,
            mr=mr,
        )

    def release(self, region: RegisteredRegion) -> Generator:
        if region.handle == "fallback":
            owned, region.owned = region.owned, False
            yield from self._fallback.release(region)
            if owned:
                self.node.arena.free(region.buffer)
        else:
            yield from self.pool.unmap(region.mr)
            if region.owned:
                self.node.arena.free(region.buffer)
        self.releases.add()


class AllPhysicalStrategy(RegistrationStrategy):
    """Global-steering-tag mode: no TPT work at all (§4.3, Fig 9).

    The consumer still pins pages (CPU cost), but no registration
    transaction happens.  The price: segments must follow physical
    contiguity, so a logically single transfer fragments into several
    segments — hence several RDMA Reads on the NFS WRITE path.
    """

    name = "all-physical"

    def __init__(self, node: IBNode):
        super().__init__(node)
        if not node.hca.phys.enabled:
            raise ValueError(
                f"node {node.name!r} does not honour the global stag; "
                "construct it with allow_physical=True"
            )

    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        buffer = self.node.arena.alloc(nbytes)
        region = yield from self.wrap(buffer, access)
        region.owned = True
        return region

    def wrap(self, buffer, access, addr=None, length=None) -> Generator:
        addr = buffer.addr if addr is None else addr
        length = buffer.length if length is None else length
        npages = (length + 4095) // 4096
        costs = self.node.hca.config.registration
        yield from self.node.cpu.consume(npages * costs.pin_cpu_per_page_us)
        buffer.pinned_pages += npages
        segments = [
            Segment(GLOBAL_STAG, run_addr, run_len)
            for run_addr, run_len in self.node.hca.phys.chunk_runs(addr, length)
        ]
        self.acquires.add()
        return RegisteredRegion(
            buffer=buffer, segments=segments, access=access, owned=False,
            handle=npages,
        )

    def release(self, region: RegisteredRegion) -> Generator:
        costs = self.node.hca.config.registration
        npages = region.handle or 0
        region.buffer.pinned_pages -= npages
        yield from self.node.cpu.consume(npages * costs.unpin_cpu_per_page_us)
        if region.owned:
            self.node.arena.free(region.buffer)
        self.releases.add()
