"""RPC/RDMA: the paper's contribution — NFS transport over InfiniBand.

Two complete transport designs, byte-compatible at the RPC layer with
the TCP transport so the same NFS client/server runs over any of them:

:mod:`repro.core.readread`
    Callaghan's original OpenSolaris design.  All bulk data moves by
    RDMA Read: the *server* exposes buffers (read chunks in the RPC
    reply) for NFS READ / long replies, and the client must send
    ``RDMA_DONE`` so the server can release them.  §4.1 catalogues the
    costs: exposed server stags, client-controlled buffer lifetime,
    synchronous reads, the IRD/ORD≤8 cap, and a client-side data copy.

:mod:`repro.core.readwrite`
    The proposed design.  The client advertises write/reply chunks in
    the RPC *call*; the server RDMA-Writes READ data and long replies
    directly into client memory and the guaranteed Write→Send ordering
    lets the reply send carry the completion semantics — no server-side
    exposure, no ``RDMA_DONE``, no server stall, fewer interrupts, and
    a zero-copy client direct-I/O path.

:mod:`repro.core.strategies` provides the four registration strategies
of §4.3 (dynamic, FMR, server buffer-registration cache, all-physical),
pluggable into either design.
"""

from repro.core.chunks import ChunkList, ReadChunk, WriteChunk
from repro.core.config import RpcRdmaConfig
from repro.core.header import MessageType, RpcRdmaHeader
from repro.core.credits import CreditManager
from repro.core.strategies import (
    AllPhysicalStrategy,
    DynamicRegistration,
    FmrStrategy,
    RegisteredRegion,
    RegistrationStrategy,
)
from repro.core.regcache import ClientRegistrationCache, RegistrationCacheStrategy
from repro.core.readread import ReadReadClient, ReadReadServer
from repro.core.readwrite import ReadWriteClient, ReadWriteServer

from repro.core.flowcontrol import (
    AdaptiveCreditPolicy,
    CreditPolicy,
    SrqCreditPolicy,
    StaticCreditPolicy,
)

__all__ = [
    "AdaptiveCreditPolicy",
    "CreditPolicy",
    "SrqCreditPolicy",
    "AllPhysicalStrategy",
    "ChunkList",
    "ClientRegistrationCache",
    "StaticCreditPolicy",
    "CreditManager",
    "DynamicRegistration",
    "FmrStrategy",
    "MessageType",
    "ReadChunk",
    "ReadReadClient",
    "ReadReadServer",
    "ReadWriteClient",
    "ReadWriteServer",
    "RegisteredRegion",
    "RegistrationCacheStrategy",
    "RegistrationStrategy",
    "RpcRdmaConfig",
    "RpcRdmaHeader",
    "WriteChunk",
]
