"""Chaos soak: self-healing mounts under a randomized fault schedule.

Four clients run a Postmark-style workload over ``rdma-rw`` on the RAID
backend while a seeded plan kills QPs, drops ~1% of channel messages
and injects transient disk errors.  No test code ever repairs a mount —
recovery is entirely the transport's retransmit/reconnect machinery —
and the invariants checked are exactly-once execution of non-idempotent
procedures and durability of every acknowledged stable write.
"""


from repro.experiments.chaos import run_chaos_soak


def test_chaos_soak(benchmark, bench_scale, record_result):
    out = benchmark.pedantic(
        run_chaos_soak, args=(bench_scale,), rounds=1, iterations=1,
    )
    record_result(out.summary)

    # The workload survives the schedule without manual intervention.
    assert out.completed, "workload did not finish under faults"
    # Exactly-once: every non-idempotent procedure executed once.
    assert out.duplicate_executions == 0, out.executions
    # Durability: every acknowledged stable WRITE read back intact.
    assert out.lost_writes == 0
    assert out.verified_files > 0

    # The schedule actually bit: this was a soak, not a calm run.
    faults = out.cluster.faults
    assert faults.qp_kills_fired.events >= 3
    assert faults.messages_dropped.events > 0
    assert faults.summary()["disk errors hit"] >= 2
    # Every fired kill was healed by the transport's own redial policy.
    reconnects = sum(m.transport.reconnects.events for m in out.cluster.mounts)
    assert reconnects >= faults.qp_kills_fired.events
    # Loss was recovered by retransmission, duplicates absorbed server-side.
    retrans = sum(m.transport.retransmissions.events for m in out.cluster.mounts)
    assert retrans > 0
    drc = out.cluster.drc
    assert drc.replays.events + drc.drops.events > 0
