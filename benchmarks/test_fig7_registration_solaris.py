"""Fig 7: registration strategies on OpenSolaris (read + write bandwidth)."""

from repro.experiments.figures import run_fig7


def _sat(result, series, column):
    return max(row[column] for row in result.rows if row[0] == series)


def test_fig7_registration_strategies_solaris(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_fig7, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)

    reg_read = _sat(result, "RW-Register-Solaris", 2)
    fmr_read = _sat(result, "RW-FMR-Solaris", 2)
    cache_read = _sat(result, "RW-Cache-Solaris", 2)
    # Paper Fig 7a: Register ~350 < FMR ~400 << Cache ~730.
    assert reg_read < fmr_read < cache_read
    assert 330 <= reg_read <= 440
    assert 380 <= fmr_read <= 480
    assert 650 <= cache_read <= 820

    reg_write = _sat(result, "RW-Register-Solaris", 3)
    cache_write = _sat(result, "RW-Cache-Solaris", 3)
    fmr_write = _sat(result, "RW-FMR-Solaris", 3)
    # Paper Fig 7b: cache lifts write to ~515; FMR's gain is modest; the
    # RDMA Read serialization bounds all of them below the read numbers.
    assert 460 <= cache_write <= 570
    assert cache_write > fmr_write >= reg_write
    assert cache_write < cache_read  # reads (RDMA Write path) go faster
