"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures on the
simulated cluster, reports the figure's rows through
``benchmark.extra_info`` and prints them (run with ``-s`` to see the
tables).  Wall-clock timing from pytest-benchmark measures the
*simulator*; the scientific output is the simulated-bandwidth rows.

Set ``REPRO_BENCH_SCALE=full`` for the full-resolution sweeps used to
regenerate EXPERIMENTS.md (slower).
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def record_result(benchmark):
    """Attach an ExperimentResult's rows to the benchmark record."""

    def _record(result) -> None:
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["paper_reference"] = result.paper_reference
        benchmark.extra_info["rows"] = [
            dict(zip(result.headers, row)) for row in result.rows
        ]
        print()
        print(result)

    return _record
