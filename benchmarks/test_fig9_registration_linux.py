"""Fig 9: registration strategies on Linux (read + write bandwidth)."""

from repro.experiments.figures import run_fig9


def _sat(result, series, column):
    return max(row[column] for row in result.rows if row[0] == series)


def _at_max_threads(result, series, column):
    rows = [row for row in result.rows if row[0] == series]
    return max(rows, key=lambda r: r[1])[column]


def test_fig9_registration_strategies_linux(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_fig9, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)

    reg_read = _sat(result, "RW-Register-Linux", 2)
    fmr_read = _sat(result, "RW-FMR-Linux", 2)
    phys_read = _sat(result, "RW-All-Physical-Linux", 2)
    # Paper Fig 9a: Register < FMR < All-Physical, with all-physical
    # pushing ~900 MB/s (the headline Linux Read number).
    assert reg_read < fmr_read < phys_read
    assert phys_read >= 820

    fmr_write = _at_max_threads(result, "RW-FMR-Linux", 3)
    phys_write = _at_max_threads(result, "RW-All-Physical-Linux", 3)
    # Paper Fig 9b: at saturation, all-physical *degrades* Write versus
    # FMR — without client scatter/gather each write fragments into
    # multiple RDMA Reads and runs into the IRD/ORD-capped, serialized
    # read engine.
    assert phys_write < 0.9 * fmr_write
