"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but direct probes of its mechanisms:

* Read-engine serialization — §4.1 blames the WRITE ceiling on "the
  serialization of RDMA Reads"; sweeping the responder's per-read
  turnaround moves that ceiling exactly as predicted.
* Inline threshold — the Fig 2 inline size decides which operations pay
  chunk/registration costs at all.
* Client-side registration cache — the technical report's extension:
  with the server cache in place, client registration is the next
  ceiling.
* Adaptive credits — the §7 future-work flow control under a client
  flood.
"""

from dataclasses import replace

from repro.analysis import SOLARIS_SDR
from repro.analysis.stats import format_table
from repro.core import AdaptiveCreditPolicy
from repro.core.config import RpcRdmaConfig
from repro.experiments import Cluster, ClusterConfig
from repro.workloads import IozoneParams, run_iozone


def _iozone(cluster, **kwargs):
    params = IozoneParams(nthreads=8, ops_per_thread=40, **kwargs)
    return run_iozone(cluster, params)


def test_ablation_read_engine_serialization(benchmark, bench_scale):
    """WRITE throughput vs the responder read-engine turnaround (§4.1).

    The paper blames the WRITE ceiling on "the serialization of RDMA
    Reads"; the read engine's per-read setup is that serialization.
    (The IRD/ORD=8 in-flight cap itself is property-tested in
    tests/test_ib_verbs_hca.py; on a serialized responder it is the
    turnaround, not the cap, that sets throughput.)"""

    def sweep():
        rows = []
        for setup_us in (20.0, 60.0, 112.0, 220.0, 440.0):
            profile = replace(
                SOLARIS_SDR,
                client_hca=replace(SOLARIS_SDR.client_hca,
                                   read_response_setup_us=setup_us),
            )
            cluster = Cluster(ClusterConfig(
                transport="rdma-rw", strategy="cache", profile=profile))
            result = _iozone(cluster)
            rows.append((setup_us, round(result.write_mb_s, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["read setup us", "write MB/s"], rows))
    by_setup = dict(rows)
    # Write bandwidth tracks 128KB/(setup+wire) until other costs bind.
    assert by_setup[20.0] > 1.5 * by_setup[220.0]
    assert by_setup[220.0] > by_setup[440.0]
    benchmark.extra_info["rows"] = rows


def test_ablation_inline_threshold(benchmark, bench_scale):
    """Small-write throughput vs the inline threshold (Fig 2 knob)."""

    def sweep():
        rows = []
        for inline in (512, 1024, 4096, 8192):
            profile = replace(
                SOLARIS_SDR,
                rpcrdma=RpcRdmaConfig(inline_threshold=inline),
            )
            cluster = Cluster(ClusterConfig(
                transport="rdma-rw", strategy="dynamic", profile=profile))
            result = _iozone(cluster, record_bytes=2048)
            rows.append((inline, round(result.write_mb_s, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["inline bytes", "2KB-record write MB/s"], rows))
    by_inline = dict(rows)
    # Once 2KB records fit inline (4096+), the chunk/registration path —
    # and its cost — disappears from the write path entirely.
    assert by_inline[4096] > 1.5 * by_inline[1024]
    benchmark.extra_info["rows"] = rows


def test_ablation_client_registration_cache(benchmark, bench_scale):
    """TR extension: caching client registrations lifts the Fig 7 cache
    plateau the rest of the way toward the wire."""

    def sweep():
        rows = []
        for strategy in ("dynamic", "cache", "client-cache"):
            cluster = Cluster(ClusterConfig(transport="rdma-rw", strategy=strategy))
            result = _iozone(cluster)
            rows.append((strategy, round(result.read_mb_s, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["strategy", "read MB/s"], rows))
    by_strategy = dict(rows)
    assert by_strategy["dynamic"] < by_strategy["cache"] < by_strategy["client-cache"]
    benchmark.extra_info["rows"] = rows


def test_ablation_adaptive_credits_under_flood(benchmark, bench_scale):
    """§7 future work: AIMD credits tame a flooding client's backlog."""

    def run_once(adaptive: bool):
        # Dynamic registration makes each 128KB write expensive at the
        # server, so a flood genuinely backs the dispatcher up.
        cluster = Cluster(ClusterConfig(transport="rdma-rw", strategy="dynamic"))
        if adaptive:
            policy = AdaptiveCreditPolicy(
                total_credits=16, min_grant=2, max_grant=32,
                backlog_high=6, backlog_low=2,
            )
            for server in cluster.server_transports:
                server.credit_policy = policy
                policy.register_connection(server.qp.qp_num)
        nfs = cluster.mounts[0].nfs

        def flood():
            fh, _ = yield from nfs.create(nfs.root, "flood")

            def one(i):
                yield from nfs.write(fh, i * 131072, b"y" * 131072)

            procs = [cluster.sim.process(one(i)) for i in range(96)]
            from repro.sim import AllOf

            yield AllOf(cluster.sim, procs)

        watcher_samples = []

        def watcher():
            while True:
                yield cluster.sim.timeout(50.0)
                watcher_samples.append(cluster.rpc_server.backlog)

        cluster.sim.process(watcher())
        cluster.run(flood())
        peak_backlog = max(watcher_samples, default=0)
        client = cluster.mounts[0].transport
        return peak_backlog, client.credits.outstanding_peak

    def sweep():
        return {"static": run_once(False), "adaptive": run_once(True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["policy", "peak dispatcher backlog", "peak client outstanding"],
        [[k, v[0], v[1]] for k, v in results.items()],
    ))
    # Adaptive grants clamp how deep one client can bury the server.
    assert results["adaptive"][1] < results["static"][1]
    assert results["adaptive"][0] <= results["static"][0]
    benchmark.extra_info["rows"] = {k: list(v) for k, v in results.items()}


def test_ablation_interrupt_cost(benchmark, bench_scale):
    """§4.2 probes: the Read-Read design takes more interrupts per READ
    (the RDMA_DONE completion among them), so inflating per-interrupt
    CPU cost hurts it disproportionately."""

    def sweep():
        rows = []
        for irq_us in (0.0, 16.0, 48.0):
            profile = replace(SOLARIS_SDR, interrupt_cost_us=irq_us)
            for design in ("rdma-rr", "rdma-rw"):
                cluster = Cluster(ClusterConfig(
                    transport=design, strategy="cache", profile=profile))
                result = _iozone(cluster)
                irqs = (cluster.server_node.irq.delivered.events
                        + sum(n.irq.delivered.events
                              for n in cluster.client_nodes))
                rows.append((irq_us, design, round(result.read_mb_s, 1),
                             irqs,
                             round(result.server_cpu_read * 100, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["irq cost us", "design", "read MB/s", "total irqs", "server CPU %"],
        rows,
    ))
    by = {(r[0], r[1]): r for r in rows}
    # The Read-Read design delivers ~1/3 more interrupts (call recv,
    # reply recv at client, and the DONE recv at the server).
    assert by[(16.0, "rdma-rr")][3] > 1.2 * by[(16.0, "rdma-rw")][3]
    # At these operation rates the cost shows up as CPU headroom, not
    # throughput — the TPT/read-engine ceilings bind first.  Server CPU
    # rises with interrupt cost.
    assert by[(48.0, "rdma-rr")][4] > by[(0.0, "rdma-rr")][4]
    benchmark.extra_info["rows"] = rows
