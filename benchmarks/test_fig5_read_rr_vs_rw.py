"""Fig 5: IOzone Read bandwidth on Solaris — Read-Read vs Read-Write."""

from repro.experiments.figures import run_fig5


def _series_max(result, prefix):
    return max(row[2] for row in result.rows if row[0].startswith(prefix))


def _at(result, series, threads):
    return next(row[2] for row in result.rows
                if row[0] == series and row[1] == threads)


def test_fig5_read_bandwidth_rr_vs_rw(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_fig5, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)

    rr_sat = _series_max(result, "RR-128K")
    rw_sat = _series_max(result, "RW-128K")
    # Paper: RR saturates ~375 MB/s, RW ~400 MB/s.
    assert 330 <= rr_sat <= 420
    assert 360 <= rw_sat <= 440
    assert rw_sat >= rr_sat
    # Paper: RW leads substantially at one thread...
    assert _at(result, "RW-128K", 1) > 1.15 * _at(result, "RR-128K", 1)
    # ...and the lead shrinks as threads pile up.
    gain_1 = _at(result, "RW-128K", 1) / _at(result, "RR-128K", 1)
    gain_8 = _at(result, "RW-128K", 8) / _at(result, "RR-128K", 8)
    assert gain_8 < gain_1
    # Record size barely matters at saturation.
    assert abs(_series_max(result, "RW-1024K") - rw_sat) < 0.25 * rw_sat
