"""§4.1 security comparison: server attack surface under load."""

from repro.experiments.figures import run_security_audit


def test_security_exposure_rr_vs_rw(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_security_audit, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)
    by_design = {row[0]: row for row in result.rows}
    rr = by_design["rdma-rr"]
    rw = by_design["rdma-rw"]
    # Read-Read handed out a server steering tag for every bulk reply.
    assert rr[1] > 0
    # Read-Write never exposed a single server stag.
    assert rw[1] == 0
    assert rw[2] == 0 and rw[3] == 0
