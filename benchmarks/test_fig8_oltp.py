"""Fig 8: FileBench OLTP throughput and CPU/op by registration strategy."""

from repro.experiments.figures import run_fig8


def _best(result, strategy):
    return max(row[2] for row in result.rows if row[0] == strategy)


def test_fig8_oltp_registration_strategies(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_fig8, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)

    register = _best(result, "Register")
    fmr = _best(result, "FMR")
    cache = _best(result, "Cache")
    # Paper: the registration cache improves OLTP throughput by up to
    # ~50% over dynamic registration...
    assert cache > 1.3 * register
    # ...while FMR performs comparably with dynamic registration.
    assert abs(fmr - register) < 0.25 * register
    # CPU per op stays in the same ballpark across strategies (the lines
    # of Fig 8 track each other).
    cpus = [row[3] for row in result.rows]
    assert max(cpus) < 3 * min(cpus)
