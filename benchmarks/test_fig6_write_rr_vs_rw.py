"""Fig 6: IOzone Write bandwidth on Solaris + client CPU utilization."""

from repro.experiments.figures import run_fig6


def _series(result, name):
    return {row[1]: row for row in result.rows if row[0] == name}


def test_fig6_write_bandwidth_and_client_cpu(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_fig6, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)

    rr = _series(result, "RR-128K")
    rw = _series(result, "RW-128K")
    # Write paths are near-identical: both designs move WRITE data by
    # server-issued RDMA Read.
    assert abs(rr[8][2] - rw[8][2]) < 0.15 * rw[8][2]
    # Paper's CPU story: RR's bounce-buffer copies push client CPU toward
    # ~24% at 8 threads; RW's zero-copy path stays in single digits.
    assert rr[8][3] > 15.0
    assert rw[8][3] < 10.0
    # CPU grows with threads for RR, stays flat-ish for RW.
    assert rr[8][3] > 2 * rr[1][3]
    assert rw[8][3] < 3 * max(rw[1][3], 1.0)
