"""Table 1: communication-primitive properties, probed from the verbs layer."""

from repro.experiments.figures import run_table1


def test_table1_primitive_properties(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(run_table1, args=(bench_scale,),
                                rounds=1, iterations=1)
    record_result(result)
    by_primitive = {row[0]: row[1:] for row in result.rows}
    # The paper's matrix: channel = pre-posted only; memory = exposed +
    # steering tag + rendezvous.
    assert by_primitive["channel"] == ["", "X", "", ""]
    assert by_primitive["memory"] == ["X", "", "X", "X"]
