"""Fig 10: multi-client IOzone Read — RDMA vs IPoIB vs GigE over RAID."""

import pytest

from repro.experiments.figures import (
    FIG10_CACHE_BIG,
    FIG10_CACHE_SMALL,
    run_fig10,
)


def _series(result, transport):
    return {row[2]: row[3] for row in result.rows if row[0] == transport}


def test_fig10a_small_server_cache(benchmark, bench_scale, record_result):
    """Fig 10(a): server cache = 4x one client file (the paper's 4 GB)."""
    result = benchmark.pedantic(
        run_fig10, args=(bench_scale,), kwargs={"cache_bytes": FIG10_CACHE_SMALL},
        rounds=1, iterations=1,
    )
    record_result(result)
    rdma = _series(result, "RDMA")
    ipoib = _series(result, "IPoIB")
    gige = _series(result, "GigE")
    # RDMA peaks near the paper's 883 MB/s in the cache-resident regime...
    assert max(rdma.values()) >= 800
    # ...then falls toward spindle bandwidth once the aggregate working
    # set spills the cache (paper: "limited by the back-end").
    assert rdma[max(rdma)] < 0.5 * max(rdma.values())
    # IPoIB is host-cost-bound far below RDMA in the cached regime.
    assert max(ipoib.values()) < 0.55 * max(rdma.values())
    # GigE is wire-bound around ~107 MB/s.
    assert 85 <= max(gige.values()) <= 125


def test_fig10b_large_server_cache(benchmark, bench_scale, record_result):
    """Fig 10(b): server cache = 8x one client file (the paper's 8 GB)."""
    result = benchmark.pedantic(
        run_fig10, args=(bench_scale,), kwargs={"cache_bytes": FIG10_CACHE_BIG},
        rounds=1, iterations=1,
    )
    record_result(result)
    rdma = _series(result, "RDMA")
    ipoib = _series(result, "IPoIB")
    # With the bigger cache, RDMA sustains high aggregate bandwidth out
    # to the largest client counts (paper: >900 MB/s through 7 clients).
    clients = sorted(rdma)
    assert rdma[clients[-1]] >= 800
    # IPoIB saturates near the paper's ~360 MB/s regardless of clients.
    assert 280 <= max(ipoib.values()) <= 440
