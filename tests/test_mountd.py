"""Tests for the MOUNT protocol, portmapper and large-I/O splitting."""

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.nfs import Export, MountClient, MountServer, Portmapper
from repro.nfs.mountd import MOUNT_PROG, MOUNT_VERS, MountError, PMAP_PROG


def make(exports=None, nclients=1):
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=nclients))
    exports = exports if exports is not None else [Export("/")]
    pmap = Portmapper(c.rpc_server)
    pmap.set(MOUNT_PROG, MOUNT_VERS, 20048)
    mountd = MountServer(c.rpc_server, c.fs, exports)
    clients = [MountClient(m.transport, f"client{i}")
               for i, m in enumerate(c.mounts)]
    return c, mountd, pmap, clients


def test_portmapper_getport():
    c, mountd, pmap, (mc,) = make()

    def proc():
        return (yield from mc.getport(MOUNT_PROG, MOUNT_VERS))

    assert c.run(proc()) == 20048
    assert pmap.lookups.events == 1


def test_portmapper_unknown_program_is_zero():
    c, mountd, pmap, (mc,) = make()

    def proc():
        return (yield from mc.getport(424242, 1))

    assert c.run(proc()) == 0


def test_mount_root_export_and_use_handle():
    c, mountd, pmap, (mc,) = make()
    nfs = c.mounts[0].nfs

    def proc():
        root_fh = yield from mc.mount("/")
        # The mounted handle is live: create a file under it.
        fh, _ = yield from nfs.create(root_fh, "via-mount")
        yield from nfs.write(fh, 0, b"mounted!")
        data, _, _ = yield from nfs.read(fh, 0, 10)
        return root_fh, data

    root_fh, data = c.run(proc())
    assert root_fh == c.nfs_server.root_handle()
    assert data == b"mounted!"
    assert mountd.grants.events == 1


def test_mount_subdirectory_export():
    c, mountd, pmap, (mc,) = make(exports=[Export("/"), Export("/homes")])
    nfs = c.mounts[0].nfs

    def proc():
        d, _ = yield from nfs.mkdir(nfs.root, "homes")
        sub_fh = yield from mc.mount("/homes")
        assert sub_fh.fileid == d.fileid
        return sub_fh

    c.run(proc())


def test_mount_unknown_export_rejected():
    c, mountd, pmap, (mc,) = make(exports=[Export("/data")])

    def proc():
        try:
            yield from mc.mount("/secret")
        except MountError as exc:
            return exc.status
        return None

    assert c.run(proc()) == 2  # MNT3ERR_NOENT
    assert mountd.rejections.events == 1


def test_mount_client_allow_list_enforced():
    c, mountd, pmap, clients = make(
        exports=[Export("/", allowed_clients=frozenset({"client0"}))],
        nclients=2,
    )
    mc0, mc1 = clients

    def allowed():
        return (yield from mc0.mount("/"))

    def denied():
        try:
            yield from mc1.mount("/")
        except MountError as exc:
            return exc.status
        return None

    assert c.run(allowed()) is not None
    assert c.run(denied()) == 13  # MNT3ERR_ACCES


def test_mount_dump_and_unmount():
    c, mountd, pmap, (mc,) = make()

    def proc():
        yield from mc.mount("/")
        assert ("client0", "/") in mountd.mounts
        yield from mc.unmount("/")

    c.run(proc())
    assert mountd.mounts == {}


def test_list_exports():
    c, mountd, pmap, (mc,) = make(exports=[Export("/"), Export("/scratch")])

    def proc():
        return (yield from mc.list_exports())

    assert c.run(proc()) == ["/", "/scratch"]


# ---------------------------------------------------------------- large I/O
def test_read_write_large_split_at_limit():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs
    blob = bytes(i % 249 for i in range(700_000))

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "big")
        info = yield from nfs.fsinfo()
        before = nfs.ops.events
        yield from nfs.write_large(fh, 0, blob, limit=256 * 1024)
        writes = nfs.ops.events - before
        data, eof = yield from nfs.read_large(fh, 0, len(blob), limit=256 * 1024)
        return info, writes, data, eof

    info, writes, data, eof = c.run(proc())
    assert info.rtmax == 1 << 20
    assert writes == 3  # ceil(700000 / 262144)
    assert data == blob and eof


def test_large_io_validation():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "f")
        with pytest.raises(ValueError):
            yield from nfs.read_large(fh, 0, 10, limit=0)
        with pytest.raises(ValueError):
            yield from nfs.write_large(fh, 0, b"x", limit=0)

    c.run(proc())
