"""Tests for RPC/RDMA header and chunk-list codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.chunks import ChunkList, ReadChunk, WriteChunk
from repro.core.header import MessageType, RpcRdmaHeader
from repro.ib.verbs import Segment
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError


def seg(stag=0x1234, addr=0x10000, length=4096):
    return Segment(stag, addr, length)


def test_empty_chunk_list_roundtrip():
    enc = XdrEncoder()
    ChunkList().encode(enc)
    out = ChunkList.decode(XdrDecoder(enc.take()))
    assert out.empty


def test_full_chunk_list_roundtrip():
    chunks = ChunkList(
        read_chunks=[ReadChunk(0, seg(1, 100, 10)), ReadChunk(1, seg(2, 200, 20))],
        write_chunks=[WriteChunk([seg(3, 300, 30), seg(4, 400, 40)])],
        reply_chunk=WriteChunk([seg(5, 500, 50)]),
    )
    enc = XdrEncoder()
    chunks.encode(enc)
    out = ChunkList.decode(XdrDecoder(enc.take()))
    assert out.read_chunks == chunks.read_chunks
    assert out.write_chunks == chunks.write_chunks
    assert out.reply_chunk == chunks.reply_chunk


def test_chunk_list_position_filter():
    chunks = ChunkList(read_chunks=[ReadChunk(0, seg(1)), ReadChunk(1, seg(2)),
                                    ReadChunk(1, seg(3))])
    assert len(chunks.read_chunks_at(0)) == 1
    assert len(chunks.read_chunks_at(1)) == 2
    assert chunks.read_length() == 3 * 4096


def test_write_chunk_requires_segments():
    with pytest.raises(ValueError):
        WriteChunk([])


def test_write_chunk_capacity():
    assert WriteChunk([seg(length=10), seg(length=20)]).capacity == 30


def test_header_msg_roundtrip():
    header = RpcRdmaHeader(
        xid=0xABCD, credits=32, mtype=MessageType.RDMA_MSG,
        rpc_message=b"rpc-call-here",
    )
    out = RpcRdmaHeader.decode(header.encode())
    assert out.xid == 0xABCD
    assert out.credits == 32
    assert out.mtype is MessageType.RDMA_MSG
    assert out.rpc_message == b"rpc-call-here"


def test_header_nomsg_carries_no_body():
    header = RpcRdmaHeader(
        xid=1, credits=8, mtype=MessageType.RDMA_NOMSG,
        chunks=ChunkList(read_chunks=[ReadChunk(0, seg())]),
        rpc_message=b"ignored-for-nomsg",
    )
    out = RpcRdmaHeader.decode(header.encode())
    assert out.mtype is MessageType.RDMA_NOMSG
    assert out.rpc_message == b""
    assert out.chunks.read_chunks == [ReadChunk(0, seg())]


def test_header_done_roundtrip():
    header = RpcRdmaHeader(xid=99, credits=16, mtype=MessageType.RDMA_DONE)
    out = RpcRdmaHeader.decode(header.encode())
    assert out.mtype is MessageType.RDMA_DONE
    assert out.xid == 99


def test_header_bad_version_rejected():
    raw = bytearray(RpcRdmaHeader(xid=1, credits=1, mtype=MessageType.RDMA_MSG).encode())
    raw[4:8] = (99).to_bytes(4, "big")  # clobber the version field
    with pytest.raises(XdrError):
        RpcRdmaHeader.decode(bytes(raw))


def test_header_bad_mtype_rejected():
    raw = bytearray(RpcRdmaHeader(xid=1, credits=1, mtype=MessageType.RDMA_MSG).encode())
    raw[12:16] = (77).to_bytes(4, "big")
    with pytest.raises(XdrError):
        RpcRdmaHeader.decode(bytes(raw))


def test_header_wire_size_counts_chunks():
    small = RpcRdmaHeader(xid=1, credits=1, mtype=MessageType.RDMA_MSG).wire_size
    with_chunks = RpcRdmaHeader(
        xid=1, credits=1, mtype=MessageType.RDMA_MSG,
        chunks=ChunkList(read_chunks=[ReadChunk(0, seg())] * 4),
    ).wire_size
    assert with_chunks > small


segments_st = st.builds(
    Segment,
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**64 - 1),
    st.integers(0, 2**31),
)


@given(
    st.lists(st.tuples(st.integers(0, 2**32 - 1), segments_st), max_size=8),
    st.lists(st.lists(segments_st, min_size=1, max_size=4), max_size=4),
    st.one_of(st.none(), st.lists(segments_st, min_size=1, max_size=4)),
    st.binary(max_size=512),
)
def test_header_roundtrip_property(reads, writes, reply, body):
    header = RpcRdmaHeader(
        xid=7, credits=3, mtype=MessageType.RDMA_MSG,
        chunks=ChunkList(
            read_chunks=[ReadChunk(p, s) for p, s in reads],
            write_chunks=[WriteChunk(w) for w in writes],
            reply_chunk=WriteChunk(reply) if reply else None,
        ),
        rpc_message=body,
    )
    out = RpcRdmaHeader.decode(header.encode())
    assert out.chunks.read_chunks == header.chunks.read_chunks
    assert out.chunks.write_chunks == header.chunks.write_chunks
    assert out.chunks.reply_chunk == header.chunks.reply_chunk
    assert out.rpc_message == body
