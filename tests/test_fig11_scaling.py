"""Fig 11 (client scaling): determinism, memory claims, registry path."""

import pytest

from repro.experiments.figures import figure_grid, run_fig11
from repro.experiments.registry import EXPERIMENTS, run


@pytest.fixture(scope="module")
def fig11_quick():
    return run_fig11("quick", jobs=1)


def rows_by_series(result):
    out = {}
    for series, clients, *rest in result.rows:
        out.setdefault(series, []).append((clients, *rest))
    return out


def test_grid_reaches_64_clients(fig11_quick):
    clients = {row[1] for row in fig11_quick.rows}
    assert max(clients) >= 64
    assert {"RDMA-SRQ", "RDMA-conn", "IPoIB"} == {r[0] for r in fig11_quick.rows}


def test_quick_grid_deterministic(fig11_quick):
    again = run_fig11("quick", jobs=1)
    assert again.rows == fig11_quick.rows


def test_parallel_sweep_bit_identical(fig11_quick):
    parallel = run_fig11("quick", jobs=4)
    assert parallel.rows == fig11_quick.rows
    assert parallel.events == fig11_quick.events


def test_srq_memory_sublinear_per_connection_linear(fig11_quick):
    by = rows_by_series(fig11_quick)
    # recv KB/client is the last column.
    conn = {clients: row[-1] for clients, *row in by["RDMA-conn"]}
    srq = {clients: row[-1] for clients, *row in by["RDMA-SRQ"]}
    # Per-connection rings: constant per client == linear total.
    assert len(set(conn.values())) == 1
    # SRQ: per-client share shrinks as clients grow (sublinear total),
    # and the 64-client total is below the per-connection total.
    assert srq[64] < srq[1]
    assert srq[64] * 64 < conn[64] * 64


def test_rdma_beats_ipoib_at_scale(fig11_quick):
    by = rows_by_series(fig11_quick)
    # aggregate read MB/s is the first metric column after clients.
    srq = {clients: row[0] for clients, *row in by["RDMA-SRQ"]}
    ipoib = {clients: row[0] for clients, *row in by["IPoIB"]}
    assert srq[64] > ipoib[64]


def test_srq_matches_per_connection_throughput(fig11_quick):
    """Pooling receive buffers must not cost bandwidth."""
    by = rows_by_series(fig11_quick)
    srq = {clients: row[0] for clients, *row in by["RDMA-SRQ"]}
    conn = {clients: row[0] for clients, *row in by["RDMA-conn"]}
    for clients, mb_s in conn.items():
        assert srq[clients] >= 0.95 * mb_s


def test_registry_runs_fig11():
    assert "fig11" in EXPERIMENTS
    result = run("fig11", "quick", jobs=1)
    assert result.headers[0] == "series"
    assert "recv KB/client" in result.headers
    with pytest.raises(KeyError):
        run("fig99")


def test_figure_grid_exposes_fig11_points():
    grid = figure_grid("fig11", "quick")
    labels = [label for label, _ in grid]
    assert "RDMA-SRQ-c64" in labels
    _, point = grid[labels.index("RDMA-SRQ-c64")]
    assert point.cluster["nclients"] == 64
    assert point.cluster["srq"] is True
