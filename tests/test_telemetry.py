"""Telemetry subsystem tests: span trees, registry, zero-cost contract.

Covers the PR's acceptance criteria:

* an NFS READ over the Read-Write transport yields a connected span
  tree (client op → RPC call → dispatch → nfsd → file system, and
  dispatch → reply → RDMA Write → Send) with per-lane HCA spans that
  are monotone and non-overlapping;
* an injected reply drop yields a retransmit span sharing the original
  call's xid and trace id;
* the golden 17-point grid is bit-identical with telemetry off and on;
* the Chrome export carries every required ``trace_event`` key and
  round-trips through JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import SOLARIS_SDR
from repro.experiments import Cluster, ClusterConfig


def make_cluster(**kwargs):
    kwargs.setdefault("telemetry", True)
    return Cluster(ClusterConfig(**kwargs))


def run_file_roundtrip(c, nbytes=256 * 1024):
    nfs = c.mounts[0].nfs
    blob = bytes(i % 251 for i in range(nbytes))

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "t.bin")
        yield from nfs.write(fh, 0, blob)
        data, eof, _ = yield from nfs.read(fh, 0, len(blob))
        return data

    assert c.run(proc()) == blob


# ---------------------------------------------------------------- span trees
def _one(spans, **kwargs):
    assert len(spans) == 1, f"expected exactly one span, got {spans}"
    return spans[0]


def test_read_write_span_tree():
    c = make_cluster(transport="rdma-rw", strategy="dynamic",
                     profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    tracer = c.telemetry.tracer

    nfs_read = _one(tracer.find(name="nfs.READ", cat="client"))
    trace = nfs_read.trace_id

    call = _one(tracer.find(name="rpc.call", trace_id=trace))
    assert call.parent_id == nfs_read.id
    dispatch = _one(tracer.find(name="rpc.dispatch", trace_id=trace))
    assert dispatch.parent_id == call.id
    receive = _one(tracer.find(name="rpc.receive", trace_id=trace))
    assert receive.parent_id == call.id
    nfsd = _one(tracer.find(name="nfsd.READ", trace_id=trace))
    assert nfsd.parent_id == dispatch.id
    fs_read = _one(tracer.find(name="tmpfs.read", trace_id=trace))
    assert fs_read.parent_id == nfsd.id
    reply = _one(tracer.find(name="rpc.reply", trace_id=trace))
    assert reply.parent_id == dispatch.id
    push = _one(tracer.find(name="rdma.write_chunks", trace_id=trace))
    assert push.parent_id == reply.id
    rdma_write = _one(tracer.find(name="hca.rdma_write", trace_id=trace))
    assert rdma_write.parent_id == push.id
    # Reply send parented under the reply span; §4.2 Write→Send ordering
    # means it must start after the RDMA Write was dispatched.
    reply_send = [s for s in tracer.find(name="hca.send", trace_id=trace)
                  if s.parent_id == reply.id]
    assert len(reply_send) == 1
    assert reply_send[0].start >= rdma_write.start

    # Synchronous child intervals nest inside their parents.
    for parent, child in ((nfs_read, call), (call, dispatch),
                          (dispatch, nfsd), (nfsd, fs_read),
                          (dispatch, reply), (reply, push)):
        assert child.finish is not None
        assert parent.start <= child.start <= child.finish <= parent.finish
    # The RDMA Write is posted fire-and-forget (§4.2: the server never
    # blocks on it), so its HCA span outlives the posting span — but it
    # must still finish before the reply span, which waits on the send
    # completion that orders behind the write.
    assert push.start <= rdma_write.start
    assert rdma_write.finish <= reply.finish

    # HCA lanes are serial per QP: spans on one lane are monotone and
    # non-overlapping.
    by_lane: dict[tuple, list] = {}
    for span in tracer.find(cat="hca"):
        by_lane.setdefault((span.pid, span.tid), []).append(span)
    assert by_lane
    for lane_spans in by_lane.values():
        ordered = sorted(lane_spans, key=lambda s: s.start)
        for prev, nxt in zip(ordered, ordered[1:]):
            assert prev.finish <= nxt.start


def test_registration_spans_and_read_read_design():
    c = make_cluster(transport="rdma-rr", strategy="fmr", profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    tracer = c.telemetry.tracer
    # FMR strategy: map/unmap spans instead of full registrations.
    assert tracer.find(name="reg.fmr_map", cat="reg")
    assert tracer.find(name="reg.fmr_unmap", cat="reg")
    # Read-Read: client pulls reply data with RDMA Reads.
    nfs_read = _one(tracer.find(name="nfs.READ", cat="client"))
    fetches = tracer.find(name="rdma.read_chunks", trace_id=nfs_read.trace_id)
    assert fetches
    assert tracer.find(name="hca.read_response", cat="hca")


def test_regcache_hit_instants():
    c = make_cluster(transport="rdma-rw", strategy="cache",
                     profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    hits = [i for i in c.telemetry.tracer.instants
            if i["name"] == "reg.cache_hit"]
    assert hits, "server regcache never hit during a read/write round trip"
    assert c.server_strategy.hits.events == len(hits)


def test_tcp_retransmit_span_shares_trace():
    c = make_cluster(transport="tcp-ipoib", strategy="dynamic",
                     profile=SOLARIS_SDR)
    mount = c.mounts[0]
    mount.transport.retrans_timeout_us = 30_000.0
    c.server_transports[0].drop_next_replies = 1
    nfs = mount.nfs

    def proc():
        yield from nfs.getattr(nfs.root)

    c.run(proc())
    tracer = c.telemetry.tracer
    retrans = _one(tracer.find(name="rpc.retransmit"))
    call = _one(tracer.find(name="rpc.call",
                            trace_id=retrans.trace_id))
    assert retrans.args["xid"] == call.args["xid"]
    assert retrans.parent_id == call.id
    assert mount.transport.retransmissions.events == 1
    drops = [i for i in tracer.instants if i["name"] == "fault.reply_dropped"]
    assert len(drops) == 1


# ---------------------------------------------------------------- zero cost
def test_telemetry_off_by_default():
    c = Cluster(ClusterConfig(profile=SOLARIS_SDR))
    assert c.telemetry is None
    assert c.sim.telemetry is None
    run_file_roundtrip(c)


def test_golden_grid_identical_with_telemetry(monkeypatch):
    """Tier-1 equivalence grid: telemetry on must not move a nanosecond."""
    from tests import test_golden_figures as golden

    original = golden._build_cluster

    def with_telemetry(spec):
        spec = dict(spec)
        spec["cluster"] = {**spec["cluster"], "telemetry": True}
        return original(spec)

    monkeypatch.setattr(golden, "_build_cluster", with_telemetry)
    want = golden._load("seed_points.json")
    for spec in golden.GRID:
        got = golden.run_point(spec)
        assert got == want[spec["name"]], (
            f"point {spec['name']} diverged with telemetry enabled"
        )


# ---------------------------------------------------------------- export
REQUIRED_KEYS = {
    "b": {"name", "cat", "id", "pid", "tid", "ts", "ph"},
    "e": {"name", "cat", "id", "pid", "tid", "ts", "ph"},
    "i": {"name", "ph", "ts", "pid", "tid", "s"},
    "M": {"name", "ph", "pid", "args"},
}


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    c = make_cluster(transport="rdma-rw", strategy="dynamic",
                     profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    path = tmp_path / "trace.json"
    c.telemetry.tracer.write_chrome(str(path))
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert events
    opens: dict[tuple, int] = {}
    for ev in events:
        ph = ev["ph"]
        assert ph in REQUIRED_KEYS, f"unexpected phase {ph!r}"
        missing = REQUIRED_KEYS[ph] - set(ev)
        assert not missing, f"{ph} event missing {missing}: {ev}"
        if ph == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert "name" in ev["args"]
        elif ph == "b":
            assert isinstance(ev["id"], str) and ev["id"].startswith("0x")
            opens[(ev["id"], ev["args"]["span_id"])] = 1
        elif ph == "e":
            assert ev["ts"] >= 0
    # b/e balance: every async begin has exactly one end with its id.
    begins = sum(1 for ev in events if ev["ph"] == "b")
    ends = sum(1 for ev in events if ev["ph"] == "e")
    assert begins == ends > 0


def test_trace_ids_never_reach_the_wire():
    from repro.rpc.msg import RpcCall, RpcReply

    call = RpcCall(xid=7, prog=100003, vers=3, proc=6, header=b"x")
    with_id = RpcCall(xid=7, prog=100003, vers=3, proc=6, header=b"x",
                      trace_id=12345)
    assert call.encode() == with_id.encode()
    reply = RpcReply(xid=7, stat=0, header=b"y")
    with_id = RpcReply(xid=7, stat=0, header=b"y", trace_id=9)
    assert reply.encode() == with_id.encode()


# ---------------------------------------------------------------- registry
def test_registry_families_and_samples():
    from repro.telemetry import Registry

    reg = Registry()
    ops = reg.counter("ops", "operations", ("verb",))
    ops.add(verb="READ")
    ops.add(2.0, verb="WRITE")
    ops.add(verb="READ")
    gauge = reg.gauge("depth", "queue depth")
    gauge.set(4)
    hist = reg.histogram("lat", "latency", ("verb",))
    for v in (1.0, 2.0, 3.0):
        hist.observe(v, verb="READ")

    samples = {str(s) for s in reg.collect()}
    assert 'ops{verb="READ"} 2.0' in samples
    assert 'ops{verb="WRITE"} 2.0' in samples
    assert "depth 4.0" in samples
    assert 'lat_count{verb="READ"} 3.0' in samples
    assert 'lat_p50{verb="READ"} 2.0' in samples

    # Children iterate sorted by label value, families in creation order.
    assert [lbl["verb"] for lbl, _ in ops.items()] == ["READ", "WRITE"]
    assert [f.name for f in reg.families()] == ["ops", "depth", "lat"]


def test_registry_idempotent_and_schema_checked():
    from repro.telemetry import Registry

    reg = Registry()
    a = reg.counter("x", "first", ("k",))
    assert reg.counter("x", "again", ("k",)) is a
    with pytest.raises(ValueError):
        reg.gauge("x")  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("x", labels=("other",))  # label-schema mismatch
    with pytest.raises(ValueError):
        a.labels(wrong="v")
    with pytest.raises(ValueError):
        a.labels(k="v").add(-1)


def test_registry_attach_reads_live_values():
    from repro.sim import Counter
    from repro.telemetry import Registry

    live = Counter("live")
    reg = Registry()
    reg.attach("calls", lambda: float(live.events), "live calls", side="a")
    assert reg.collect()[-1].value == 0.0
    live.add()
    live.add()
    assert reg.collect()[-1].value == 2.0


def test_registry_absorbs_cluster_counters():
    c = make_cluster(transport="rdma-rw", strategy="fmr", profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    reg = c.telemetry.registry
    by_name = {}
    for sample in reg.collect():
        by_name.setdefault(sample.name, []).append(sample)
    transport = c.mounts[0].transport
    assert by_name["rpc_calls_sent"][0].value == float(
        transport.calls_sent.events)
    assert by_name["rpc_server_calls"][0].value == float(
        c.rpc_server.calls_served.events)
    # FMR occupancy gauge is live: everything unmapped after the run.
    fmr_sides = {dict(s.labels)["side"]: s.value
                 for s in by_name["fmr_mapped"]}
    assert "server" in fmr_sides
    assert all(v == 0.0 for v in fmr_sides.values())
    # Per-verb histograms recorded through the client hook.
    hist = reg.get("nfs_client_latency_us")
    verbs = {lbl["verb"] for lbl, _ in hist.items()}
    assert {"CREATE", "WRITE", "READ"} <= verbs


def test_nfsstat_report_renders():
    from repro.telemetry.nfsstat import render_stats

    c = make_cluster(transport="rdma-rw", strategy="cache",
                     profile=SOLARIS_SDR)
    run_file_roundtrip(c)
    text = render_stats(c)
    for needle in ("NFS per-verb operations", "RPC transport (per mount)",
                   "Server RPC dispatch", "Registration", "READ", "WRITE",
                   "regcache", "hit rate", "p50", "p99"):
        assert needle in text, f"missing {needle!r} in:\n{text}"
    plain = Cluster(ClusterConfig(profile=SOLARIS_SDR))
    with pytest.raises(ValueError):
        render_stats(plain)


# ---------------------------------------------------------------- satellites
def test_latency_recorder_amortized_growth():
    from repro.analysis.latency import LatencyRecorder

    rec = LatencyRecorder("t", initial_capacity=2)
    for i in range(1000):
        rec.record(float(i))
    assert len(rec) == 1000
    assert rec.values[0] == 0.0 and rec.values[-1] == 999.0
    # Growth under a live view must not corrupt previously recorded data.
    view = rec.values
    for i in range(1000, 3000):
        rec.record(float(i))
    assert rec.values[999] == 999.0 and rec.values[-1] == 2999.0
    assert view[0] == 0.0  # the old view stays intact (copy fallback)


def test_latency_recorder_extend_and_merge():
    from repro.analysis.latency import LatencyRecorder

    a = LatencyRecorder("a", initial_capacity=1)
    b = LatencyRecorder("b", initial_capacity=1)
    for i in range(10):
        a.record(float(i))
    for i in range(20):
        b.record(100.0 + i)
    merged = a.merge(b)
    assert len(merged) == 30
    a.extend(b)
    assert len(a) == 30
    assert list(a.values) == list(merged.values)
    assert a.values[10] == 100.0


def test_sim_tracer_counts_ordering():
    from repro.sim import Simulator
    from repro.sim.trace import Tracer

    sim = Simulator()
    tracer = Tracer()
    for cat in ("zeta", "alpha", "zeta", "mid"):
        tracer.emit(sim, cat)
    # Plain dict: insertion order preserved internally...
    assert list(tracer.counts) == ["zeta", "alpha", "mid"]
    # ...but reporting is sorted, independent of emit order.
    assert tracer.sorted_counts() == [("alpha", 1), ("mid", 1), ("zeta", 2)]
    assert tracer.count("zeta") == 2
