"""tools/bench_gate.py must fail on regressions and read both schemas."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import bench_gate  # noqa: E402


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


def _v2(name: str, eps: int, events: int = 1_000_000) -> dict:
    return {
        "schema_version": 2,
        "experiment": name,
        "scale": "quick",
        "jobs": 1,
        "core": "c",
        "wall_seconds": round(events / eps, 3),
        "events": events,
        "events_per_sec": eps,
        "points": 4,
    }


def _v1(name: str, eps: int, events: int = 1_000_000) -> dict:
    # the pre-versioning shape: events_stepped, no schema_version/core
    return {
        "experiment": name,
        "scale": "quick",
        "jobs": 1,
        "wall_seconds": round(events / eps, 3),
        "events_stepped": events,
        "events_per_sec": eps,
        "points": 4,
    }


def test_gate_passes_when_fresh_is_fast_enough(tmp_path):
    _write(tmp_path / "base", "fig5", _v2("fig5", 100_000))
    _write(tmp_path / "fresh", "fig5", _v2("fig5", 95_000))  # -5% < 15%
    rc = bench_gate.main(["--fresh", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"),
                          "--max-regress", "15"])
    assert rc == 0


def test_gate_fails_on_synthetic_regression(tmp_path):
    _write(tmp_path / "base", "fig5", _v2("fig5", 100_000))
    _write(tmp_path / "fresh", "fig5", _v2("fig5", 80_000))  # -20% > 15%
    rc = bench_gate.main(["--fresh", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"),
                          "--max-regress", "15"])
    assert rc != 0


def test_gate_fails_on_missing_figure(tmp_path):
    _write(tmp_path / "base", "fig5", _v2("fig5", 100_000))
    _write(tmp_path / "base", "fig6", _v2("fig6", 100_000))
    _write(tmp_path / "fresh", "fig5", _v2("fig5", 100_000))
    rc = bench_gate.main(["--fresh", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base")])
    assert rc != 0


def test_gate_reads_v1_baselines(tmp_path):
    """Old unversioned baselines (events_stepped) stay comparable."""
    _write(tmp_path / "base", "fig5", _v1("fig5", 100_000))
    _write(tmp_path / "fresh", "fig5", _v2("fig5", 200_000))
    rc = bench_gate.main(["--fresh", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base")])
    assert rc == 0
    bench = bench_gate.load_bench(tmp_path / "base" / "BENCH_fig5.json")
    assert bench["schema_version"] == 1
    assert bench["events"] == 1_000_000


def test_gate_derives_eps_when_absent(tmp_path):
    payload = _v1("fig5", 100_000)
    del payload["events_per_sec"]  # oldest files: wall + events only
    _write(tmp_path / "base", "fig5", payload)
    bench = bench_gate.load_bench(tmp_path / "base" / "BENCH_fig5.json")
    assert bench["events_per_sec"] == pytest.approx(100_000, rel=0.01)


def test_gate_faster_than_baseline_always_passes(tmp_path):
    _write(tmp_path / "base", "fig5", _v2("fig5", 100_000))
    _write(tmp_path / "fresh", "fig5", _v2("fig5", 1_000_000))  # 10x faster
    rc = bench_gate.main(["--fresh", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"),
                          "--max-regress", "0"])
    assert rc == 0
