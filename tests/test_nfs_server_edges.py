"""NFS server edge cases: stale handles, bad procs, malformed args."""

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.nfs import FileHandle, NfsError
from repro.nfs.protocol import Nfs3Proc, Nfs3Status
from repro.rpc.msg import RpcCall
from repro.rpc.xdr import XdrEncoder


def make():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    return c, c.mounts[0].nfs


def test_foreign_fsid_is_stale():
    c, nfs = make()
    alien = FileHandle(fsid=999, fileid=1)

    def proc():
        try:
            yield from nfs.getattr(alien)
        except NfsError as exc:
            return exc.status
        return None

    assert c.run(proc()) is Nfs3Status.STALE


def test_unknown_procedure_serverfault():
    c, nfs = make()

    def proc():
        enc = XdrEncoder()
        nfs.root.encode(enc)
        call = RpcCall(prog=100003, vers=3, proc=99, header=enc.take())
        reply = yield from nfs.transport.call(call)
        return reply

    reply = c.run(proc())
    from repro.rpc.xdr import XdrDecoder

    assert XdrDecoder(reply.header).u32() == int(Nfs3Status.SERVERFAULT)


def test_malformed_args_inval():
    c, nfs = make()

    def proc():
        call = RpcCall(prog=100003, vers=3, proc=int(Nfs3Proc.GETATTR),
                       header=b"\x00\x00")  # truncated file handle
        reply = yield from nfs.transport.call(call)
        return reply

    reply = c.run(proc())
    from repro.rpc.xdr import XdrDecoder

    assert XdrDecoder(reply.header).u32() == int(Nfs3Status.INVAL)


def test_write_count_payload_mismatch_rejected():
    c, nfs = make()

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "f")
        enc = XdrEncoder()
        fh.encode(enc)
        enc.u64(0)
        enc.u32(500)   # claims 500 bytes
        enc.u32(0)
        call = RpcCall(prog=100003, vers=3, proc=int(Nfs3Proc.WRITE),
                       header=enc.take(), write_payload=b"only-14-bytes!")
        reply = yield from nfs.transport.call(call)
        return reply

    reply = c.run(proc())
    from repro.rpc.xdr import XdrDecoder

    assert XdrDecoder(reply.header).u32() == int(Nfs3Status.INVAL)


def test_read_of_empty_file_is_eof():
    c, nfs = make()

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "empty")
        data, eof, attrs = yield from nfs.read(fh, 0, 4096)
        return data, eof, attrs.size

    data, eof, size = c.run(proc())
    assert data == b"" and eof and size == 0


def test_read_past_eof_returns_short():
    c, nfs = make()

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "short")
        yield from nfs.write(fh, 0, b"0123456789")
        data, eof, _ = yield from nfs.read(fh, 8, 4096)
        return data, eof

    data, eof = c.run(proc())
    assert data == b"89" and eof


def test_readdir_empty_directory():
    c, nfs = make()

    def proc():
        d, _ = yield from nfs.mkdir(nfs.root, "void")
        return (yield from nfs.readdir(d))

    assert c.run(proc()) == []


def test_error_counter_increments():
    c, nfs = make()

    def proc():
        for _ in range(3):
            try:
                yield from nfs.lookup(nfs.root, "ghost")
            except NfsError:
                pass

    c.run(proc())
    assert c.nfs_server.errors.events == 3
