"""Unit tests for the OS model: CPU, interrupts, slab, thread pool."""

import pytest

from repro.osmodel import (
    CPU,
    CPUConfig,
    InterruptController,
    KernelThreadPool,
    SlabAllocator,
    SlabCache,
    TaskFailure,
)
from repro.sim import Simulator


# ---------------------------------------------------------------- CPU
def test_cpu_consume_advances_time_and_counts():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))

    def proc():
        yield from cpu.consume(10.0)

    sim.run_until_complete(sim.process(proc()))
    assert sim.now == 10.0
    assert cpu.busy_us_total == 10.0


def test_cpu_cores_contend():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    ends = []

    def proc():
        yield from cpu.consume(10.0)
        ends.append(sim.now)

    for _ in range(4):
        sim.process(proc())
    sim.run()
    # 4 jobs of 10us on 2 cores => finish at 10 and 20.
    assert ends == [10.0, 10.0, 20.0, 20.0]


def test_cpu_utilization_metering():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))

    def proc():
        yield from cpu.consume(10.0)

    sim.process(proc())
    sim.run(until=20.0)
    # one core busy for 10us out of 2 cores * 20us => 25%
    assert cpu.utilization() == pytest.approx(0.25)


def test_cpu_copy_cost_scales_with_bytes():
    cfg = CPUConfig(cores=1, memcpy_mb_s=1000.0)
    assert cfg.copy_cost_us(1_000_000) == pytest.approx(1000.0)  # 1MB at 1GB/s = 1000us
    sim = Simulator()
    cpu = CPU(sim, cfg)

    def proc():
        yield from cpu.copy(500_000)

    sim.run_until_complete(sim.process(proc()))
    assert sim.now == pytest.approx(500.0)


def test_cpu_zero_demand_is_free():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))

    def proc():
        yield from cpu.consume(0.0)
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.process(proc()))
    assert cpu.busy_us_total == 0.0


def test_cpu_negative_demand_rejected():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))
    with pytest.raises(ValueError):
        list(cpu.consume(-1.0))


# ---------------------------------------------------------------- interrupts
def test_interrupt_charges_cpu():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))
    irq = InterruptController(sim, cpu, cost_us=4.0)

    def proc():
        yield from irq.raise_irq()

    sim.run_until_complete(sim.process(proc()))
    assert cpu.busy_us_total == pytest.approx(4.0)
    assert irq.delivered.events == 1


def test_interrupt_coalescing_skips_cpu_charge():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))
    irq = InterruptController(sim, cpu, cost_us=4.0, coalesce_window_us=100.0)

    def proc():
        yield from irq.raise_irq()
        yield from irq.raise_irq()  # inside window: coalesced
        yield sim.timeout(200.0)
        yield from irq.raise_irq()  # outside window: charged

    sim.run_until_complete(sim.process(proc()))
    assert irq.delivered.events == 2
    assert irq.coalesced.events == 1
    assert cpu.busy_us_total == pytest.approx(8.0)


def test_interrupt_runs_handler():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=1))
    irq = InterruptController(sim, cpu, cost_us=1.0)
    ran = []

    def handler():
        yield sim.timeout(2.0)
        ran.append(sim.now)

    def proc():
        yield from irq.raise_irq(handler)

    sim.run_until_complete(sim.process(proc()))
    assert ran == [3.0]


# ---------------------------------------------------------------- slab
def test_slab_cache_reuses_objects():
    cache = SlabCache(4096)
    a = cache.alloc()
    cache.free(a)
    b = cache.alloc()
    assert b is a
    assert cache.hits.events == 1
    assert cache.misses.events == 1


def test_slab_object_preserves_registration_across_reuse():
    cache = SlabCache(4096)
    obj = cache.alloc()
    obj.registration = "live-mr-handle"
    cache.free(obj)
    again = cache.alloc()
    assert again.registration == "live-mr-handle"


def test_slab_size_class_rounding():
    alloc = SlabAllocator()
    obj = alloc.alloc(5000)
    assert obj.size_class == 8192
    assert len(obj.buffer) == 8192


def test_slab_double_free_rejected():
    cache = SlabCache(64)
    obj = cache.alloc()
    cache.free(obj)
    with pytest.raises(ValueError):
        cache.free(obj)


def test_slab_wrong_class_free_rejected():
    c1, c2 = SlabCache(64), SlabCache(128)
    obj = c1.alloc()
    c1.free(obj)
    fresh = c1.alloc()
    with pytest.raises(ValueError):
        c2.free(fresh)


def test_slab_allocator_reclaims_over_budget():
    class FakeReg:
        def __init__(self):
            self.invalidated = False

        def invalidate(self):
            self.invalidated = True

    alloc = SlabAllocator(budget_bytes=3 * 4096)
    objs = [alloc.alloc(4096) for _ in range(4)]
    regs = [FakeReg() for _ in objs]
    for obj, reg in zip(objs, regs):
        obj.registration = reg
    for obj in objs:
        alloc.free(obj)
    assert alloc.footprint_bytes() <= 3 * 4096
    assert any(r.invalidated for r in regs)


def test_slab_footprint_accounting():
    alloc = SlabAllocator()
    alloc.alloc(4096)
    alloc.alloc(4096)
    alloc.alloc(100)
    assert alloc.footprint_bytes() == 2 * 4096 + 128


# ---------------------------------------------------------------- threads
def test_thread_pool_processes_tasks():
    sim = Simulator()
    done = []

    def handler(worker, task):
        yield sim.timeout(10.0)
        done.append((worker, task, sim.now))

    pool = KernelThreadPool(sim, nthreads=2, handler=handler)
    for t in range(4):
        pool.submit(t)
    sim.run(until=100.0)
    assert pool.completed.events == 4
    # 4 tasks, 2 threads, 10us each => last finishes at 20us.
    assert max(at for _, _, at in done) == 20.0


def test_thread_pool_single_thread_serializes():
    sim = Simulator()
    finish = []

    def handler(worker, task):
        yield sim.timeout(5.0)
        finish.append(sim.now)

    pool = KernelThreadPool(sim, nthreads=1, handler=handler)
    for t in range(3):
        pool.submit(t)
    sim.run(until=100.0)
    assert finish == [5.0, 10.0, 15.0]


def test_thread_pool_task_failure_counted():
    sim = Simulator()

    def handler(worker, task):
        yield sim.timeout(1.0)
        if task == "bad":
            raise TaskFailure()

    pool = KernelThreadPool(sim, nthreads=1, handler=handler)
    pool.submit("ok")
    pool.submit("bad")
    pool.submit("ok2")
    sim.run(until=100.0)
    assert pool.completed.events == 2
    assert pool.failed.events == 1


def test_thread_pool_stop_drains():
    sim = Simulator()

    def handler(worker, task):
        yield sim.timeout(1.0)

    pool = KernelThreadPool(sim, nthreads=2, handler=handler)
    for t in range(3):
        pool.submit(t)
    pool.stop()
    sim.run(until=100.0)
    assert pool.completed.events == 3
    with pytest.raises(RuntimeError):
        pool.submit("late")


def test_thread_pool_requires_threads():
    sim = Simulator()
    with pytest.raises(ValueError):
        KernelThreadPool(sim, nthreads=0, handler=lambda w, t: iter(()))
