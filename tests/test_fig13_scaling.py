"""Fig 13 (mount scaling): the QP-mux and sharding acceptance claims.

One quick grid run backs every assertion; rerun determinism and
job-count invariance are covered by ``repro check --figure fig13``.
"""

import math

import pytest

from repro.experiments.figures import run_fig13
from repro.experiments.registry import EXPERIMENTS

HOSTS = 4  # fig13's client_hosts

# row layout: series, mounts, aggregate MB/s, read p99 us, QPs, recv KB
MBS, P99, QPS, KB = 2, 3, 4, 5


@pytest.fixture(scope="module")
def fig13_quick():
    return run_fig13("quick", jobs=4)


def by_series(result):
    out = {}
    for row in result.rows:
        out.setdefault(row[0], {})[row[1]] = row
    return out


def test_grid_shape(fig13_quick):
    by = by_series(fig13_quick)
    assert set(by) == {"per-conn", "muxed", "muxed+sharded"}
    for series in by.values():
        assert set(series) == {1, 10, 100, 1000}
    assert "fig13" in EXPERIMENTS


def test_per_connection_cost_is_linear(fig13_quick):
    per_conn = by_series(fig13_quick)["per-conn"]
    for mounts, row in per_conn.items():
        assert row[QPS] == mounts
        assert row[KB] == pytest.approx(8.0 * mounts)


def test_muxed_cost_is_sublinear(fig13_quick):
    """QPs <= 2*sqrt(N) + hosts, registered memory collapsed."""
    by = by_series(fig13_quick)
    for series in ("muxed", "muxed+sharded"):
        for mounts, row in by[series].items():
            assert row[QPS] <= 2 * math.isqrt(mounts) + HOSTS
    assert by["muxed"][1000][KB] < by["per-conn"][1000][KB] / 4
    assert by["muxed"][1000][QPS] < by["per-conn"][1000][QPS] / 4


def test_mux_bandwidth_within_10pct_at_low_mount_counts(fig13_quick):
    """Lane framing and per-lane credit slices cost ~nothing unloaded."""
    by = by_series(fig13_quick)
    for mounts in (1, 10):
        base = by["per-conn"][mounts][MBS]
        assert by["muxed"][mounts][MBS] >= 0.9 * base


def test_sharding_lifts_saturated_throughput_and_tail(fig13_quick):
    by = by_series(fig13_quick)
    base = by["per-conn"][1000]
    sharded = by["muxed+sharded"][1000]
    assert sharded[MBS] > 2 * base[MBS]   # 4 shards: measured ~4.0x
    assert sharded[P99] < base[P99] / 2   # measured 42.8ms vs 167ms
