"""Unit tests for the discrete-event kernel (events, processes, conditions)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]


def test_timeout_carries_value():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == [42]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_propagates_to_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_defused_failure_does_not_crash_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("handled elsewhere")).defused()
    sim.run()  # must not raise


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc())
    result = sim.run_until_complete(p)
    assert result == "done"


def test_process_waits_on_subprocess():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_until_complete(sim.process(parent())) == 8
    assert sim.now == 4.0


def test_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("oops")

    p = sim.process(bad())
    with pytest.raises(KeyError):
        sim.run_until_complete(p)


def test_process_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run_until_complete(p)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process the event with no waiters
    got = []

    def late_waiter():
        got.append((yield ev))
        got.append(sim.now)

    sim.process(late_waiter())
    sim.run()
    assert got == ["early", 0.0]


def test_interrupt_thrown_into_process():
    sim = Simulator()
    observed = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as irq:
            observed.append((sim.now, irq.cause))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10.0)
        p.interrupt(cause="wakeup")

    sim.process(interrupter())
    sim.run()
    assert observed == [(10.0, "wakeup")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def proc():
        t1 = sim.timeout(3.0, value="a")
        t2 = sim.timeout(7.0, value="b")
        result = yield AllOf(sim, [t1, t2])
        done_at.append(sim.now)
        assert set(result.values()) == {"a", "b"}

    sim.process(proc())
    sim.run()
    assert done_at == [7.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    done_at = []

    def proc():
        t1 = sim.timeout(3.0, value="fast")
        t2 = sim.timeout(7.0, value="slow")
        result = yield AnyOf(sim, [t1, t2])
        done_at.append(sim.now)
        assert "fast" in result.values()

    sim.process(proc())
    sim.run()
    assert done_at == [3.0]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    fired = []

    def proc():
        yield AllOf(sim, [])
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [0.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(tag):
        def proc():
            yield sim.timeout(5.0)
            order.append(tag)
        return proc

    for tag in range(10):
        sim.process(make(tag)())
    sim.run()
    assert order == list(range(10))


def test_run_until_time_stops_clock():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=35.0)
    assert sim.now == 35.0
    assert sim.queue_size > 0


def test_run_until_past_rejected():
    sim = Simulator()
    sim.process(iter_timeout(sim, 10.0))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    ev = sim.event()  # never fires

    def stuck():
        yield ev

    p = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_determinism_two_identical_runs():
    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(wid, delays):
            for d in delays:
                yield sim.timeout(d)
                trace.append((round(sim.now, 6), wid))

        for wid in range(5):
            sim.process(worker(wid, [1.0 + wid * 0.1] * 20))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
