"""Tests for the IOzone and FileBench OLTP workload generators."""

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.workloads import IozoneParams, OltpParams, run_iozone, run_oltp


def test_iozone_params_record_math():
    p = IozoneParams(record_bytes=128 * 1024, file_bytes=1 << 20, ops_per_thread=None)
    assert p.records_per_thread() == 8
    p2 = IozoneParams(record_bytes=128 * 1024, file_bytes=1 << 30, ops_per_thread=16)
    assert p2.records_per_thread() == 16
    assert len(p.record_payload()) == 128 * 1024


def test_iozone_produces_positive_bandwidth():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    r = run_iozone(c, IozoneParams(nthreads=2, ops_per_thread=10))
    assert r.read_mb_s > 0 and r.write_mb_s > 0
    assert r.bytes_per_phase == 2 * 10 * 128 * 1024
    assert 0 <= r.client_cpu_read <= 1


def test_iozone_more_threads_more_throughput():
    results = {}
    for threads in (1, 4):
        c = Cluster(ClusterConfig(transport="rdma-rw"))
        results[threads] = run_iozone(
            c, IozoneParams(nthreads=threads, ops_per_thread=20)
        ).read_mb_s
    assert results[4] > 1.5 * results[1]


def test_iozone_verifies_read_lengths():
    # The workload asserts full-size reads; a run completing is a data check.
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    r = run_iozone(c, IozoneParams(nthreads=1, ops_per_thread=5,
                                   record_bytes=64 * 1024))
    assert r.read_mb_s > 0


def test_iozone_multi_client_aggregates():
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=3))
    r = run_iozone(c, IozoneParams(nthreads=1, ops_per_thread=10))
    assert r.bytes_per_phase == 3 * 10 * 128 * 1024


def test_iozone_over_tcp():
    c = Cluster(ClusterConfig(transport="tcp-gige"))
    r = run_iozone(c, IozoneParams(nthreads=1, ops_per_thread=8))
    assert 0 < r.read_mb_s < 125.0  # can't beat the GigE wire


def test_oltp_runs_and_counts_ops():
    c = Cluster(ClusterConfig(transport="rdma-rw", strategy="cache"))
    params = OltpParams(readers=4, writers=2, log_writers=1,
                        datafile_bytes=4 << 20, ops_per_thread=5)
    r = run_oltp(c, params)
    assert r.ops_total == (4 + 2 + 1) * 5
    assert r.ops_per_s > 0
    assert r.client_cpu_us_per_op > 0
    assert r.bytes_read > 0 and r.bytes_written > 0


def test_oltp_deterministic_given_seed():
    def once():
        c = Cluster(ClusterConfig(transport="rdma-rw"))
        return run_oltp(c, OltpParams(readers=3, writers=1, log_writers=1,
                                      datafile_bytes=2 << 20, ops_per_thread=4))

    a, b = once(), once()
    assert a.elapsed_us == b.elapsed_us
    assert a.bytes_read == b.bytes_read


def test_oltp_cache_strategy_beats_dynamic():
    """The Fig 8 claim: the registration cache lifts OLTP throughput."""
    results = {}
    for strategy in ("dynamic", "cache"):
        c = Cluster(ClusterConfig(transport="rdma-rw", strategy=strategy))
        r = run_oltp(c, OltpParams(readers=16, writers=4, log_writers=1,
                                   datafile_bytes=8 << 20, ops_per_thread=6))
        results[strategy] = r.ops_per_s
    assert results["cache"] > 1.15 * results["dynamic"]


# ---------------------------------------------------------------- postmark
def test_postmark_runs_and_balances():
    from repro.workloads import PostmarkParams, run_postmark

    c = Cluster(ClusterConfig(transport="rdma-rw", strategy="cache"))
    params = PostmarkParams(initial_files=20, transactions=80, nthreads=4)
    r = run_postmark(c, params)
    assert r.transactions == 80
    assert r.txns_per_s > 0
    assert r.bytes_written > 0
    assert r.latency.count == 80
    assert r.latency.p99 >= r.latency.p50


def test_postmark_deterministic():
    from repro.workloads import PostmarkParams, run_postmark

    def once():
        c = Cluster(ClusterConfig(transport="rdma-rw"))
        return run_postmark(c, PostmarkParams(initial_files=10, transactions=40))

    a, b = once(), once()
    assert a.elapsed_us == b.elapsed_us
    assert (a.created, a.deleted) == (b.created, b.deleted)


def test_postmark_client_cache_helps_metadata():
    from repro.workloads import PostmarkParams, run_postmark

    results = {}
    for cached in (False, True):
        c = Cluster(ClusterConfig(transport="rdma-rw", strategy="cache"))
        r = run_postmark(c, PostmarkParams(
            initial_files=30, transactions=120, nthreads=4,
            use_client_cache=cached, read_bias=0.8,
        ))
        results[cached] = r.txns_per_s
    # Attribute-cache hits remove a GETATTR round trip from most data
    # transactions.
    assert results[True] > 1.1 * results[False]


def test_postmark_over_all_transports():
    from repro.workloads import PostmarkParams, run_postmark

    for transport in ("rdma-rw", "rdma-rr", "tcp-gige"):
        c = Cluster(ClusterConfig(transport=transport))
        r = run_postmark(c, PostmarkParams(initial_files=8, transactions=32,
                                           nthreads=2))
        assert r.transactions == 32
