"""One deliberately-broken fixture per runtime sanitizer rule.

Each test wires a minimal fabric with ``sim.sanitizer`` attached and
commits exactly the violation the rule exists to catch; the typed
:class:`repro.errors.SanitizerError` subclass must surface.  A final
set of tests asserts the flip side: clean traffic records nothing and
sanitized metrics are bit-identical to unsanitized ones.
"""

from types import SimpleNamespace

import pytest

from repro.check.sanitizer import Sanitizer
from repro.core.chunks import ChunkList, ReadChunk
from repro.core.credits import CreditManager
from repro.errors import (
    AccessViolation,
    BoundsViolation,
    ChunkLifetimeViolation,
    CreditViolation,
    DrcViolation,
    LeakViolation,
    SanitizerError,
    SrqViolation,
    StaleStagViolation,
)
from repro.ib import (
    AccessFlags,
    Fabric,
    RdmaReadWR,
    RdmaWriteWR,
    Segment,
    SendWR,
)
from repro.ib.srq import SharedReceivePool
from repro.rpc.drc import DuplicateRequestCache
from repro.sim import Simulator
from repro.sim.trace import Counter


def make_pair():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    fabric = Fabric(sim, seed=42)
    a = fabric.add_node("a")
    b = fabric.add_node("b")
    qa, qb = fabric.connect(a, b)
    return sim, a, b, qa, qb


def reg(sim, node, size, access):
    buf = node.arena.alloc(size)

    def proc():
        return (yield from node.hca.tpt.register(buf, access))

    mr = sim.run_until_complete(sim.process(proc()))
    return buf, mr


def post(sim, node, qp, wr):
    def proc():
        yield from node.hca.post_send(qp, wr)

    sim.run_until_complete(sim.process(proc()))


# ---------------------------------------------------------------- bounds
def test_oversized_rdma_write_is_a_bounds_violation():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 8192, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 8192)],
        remote=Segment(rmr.stag, rmr.addr, 8192),  # 2x the remote window
    )
    post(sim, a, qa, wr)
    with pytest.raises(BoundsViolation):
        sim.run()


# ---------------------------------------------------------------- access
def test_write_into_read_only_exposure_is_an_access_violation():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_READ)  # read-only
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64),
    )
    post(sim, a, qa, wr)
    with pytest.raises(AccessViolation):
        sim.run()


# ---------------------------------------------------------------- stale-stag
def test_use_after_deregister_of_remote_target():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64),
    )
    qa.post_send(wr)     # epoch snapshot happens here
    rmr.invalidate()     # ... and the target dies before delivery
    with pytest.raises(StaleStagViolation):
        sim.run()


def test_local_stag_invalidated_between_post_and_execute():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    send = SendWR(sim, segments=[Segment(lmr.stag, lmr.addr, 32)])
    qa.post_send(send)
    lmr.invalidate()
    with pytest.raises(StaleStagViolation):
        sim.run()


def test_fmr_stag_reuse_window_is_caught():
    """The classic FMR hazard: a WR posted inside the unmap/remap
    window.  Its epoch snapshot predates the remap, so whether it
    delivers while the stag is dead (no live registration) or after the
    pool re-installs the same stag over different memory (epoch
    mismatch), the stale-stag rule fires."""
    from repro.ib.fmr import FMRPool

    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    pool = FMRPool(b.hca.tpt, pool_size=1)
    victim = b.arena.alloc(4096)
    other = b.arena.alloc(4096)

    def map_one(buf):
        return (yield from pool.map(buf, AccessFlags.REMOTE_WRITE,
                                    buf.addr, 4096))

    mr1 = sim.run_until_complete(sim.process(map_one(victim)))
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(mr1.stag, victim.addr, 64),
    )

    def remap():
        yield from pool.unmap(mr1)
        qa.post_send(wr)  # snapshot taken with the mapping already gone
        return (yield from map_one(other))

    with pytest.raises(StaleStagViolation):
        sim.run_until_complete(sim.process(remap()))
        sim.run()
    assert sim.sanitizer.counts["stale-stag"] == 1


# ------------------------------------------------------------ chunk-lifetime
def test_rdma_read_after_chunk_retired():
    sim, a, b, qa, qb = make_pair()
    san = sim.sanitizer
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_READ)
    tname = b.hca.tpt.name
    chunks = ChunkList()
    chunks.read_chunks.append(
        ReadChunk(position=0, segment=Segment(rmr.stag, rmr.addr, 4096)))
    san.advertise(tname, 0x77, chunks)
    san.retire(tname, 0x77)  # call completed; window must not be touched
    wr = RdmaReadWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64),
    )
    post(sim, a, qa, wr)
    with pytest.raises(ChunkLifetimeViolation):
        sim.run()


def test_rdma_write_outside_advertised_window():
    sim, a, b, qa, qb = make_pair()
    san = sim.sanitizer
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    tname = b.hca.tpt.name
    chunks = ChunkList()
    chunks.read_chunks.append(  # only [addr, addr+128) advertised, as read
        ReadChunk(position=0, segment=Segment(rmr.stag, rmr.addr, 128)))
    san.advertise(tname, 0x78, chunks)
    wr = RdmaWriteWR(  # write into a read-advertised stag
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64),
    )
    post(sim, a, qa, wr)
    with pytest.raises(ChunkLifetimeViolation):
        sim.run()


# ---------------------------------------------------------------- srq
def test_double_recycle_of_srq_slot():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    fabric = Fabric(sim, seed=42)
    node = fabric.add_node("srv")
    pool = SharedReceivePool(node, entries=2, buffer_bytes=1024)
    sim.run_until_complete(sim.process(pool.setup()))
    wr = pool.take(SimpleNamespace(qp_num=7))
    assert wr is not None
    pool.recycle(wr)
    with pytest.raises(SrqViolation):
        pool.recycle(wr)  # same slot recycled twice


# ---------------------------------------------------------------- credits
def test_release_without_acquire_is_a_credit_violation():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    mgr = CreditManager(sim, initial_grant=4)
    with pytest.raises(CreditViolation):
        mgr.release()


def test_outstanding_beyond_grant_is_a_credit_violation():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    mgr = CreditManager(sim, initial_grant=1)
    sim.run_until_complete(sim.process(mgr.acquire()))
    mgr._outstanding = 3  # corrupt the ledger the way a double-grant would
    with pytest.raises(CreditViolation):
        sim.sanitizer.check_credits(mgr)


# ---------------------------------------------------------------- drc
def test_begin_on_live_drc_entry_is_a_violation():
    sim = Simulator()
    sim.sanitizer = Sanitizer(sim)
    drc = DuplicateRequestCache()
    drc.begin(0x42, 100003, 6)
    with pytest.raises(DrcViolation):
        sim.sanitizer.on_drc_begin(drc, 0x42, 100003, 6)


# ---------------------------------------------------------------- leak
def test_unbalanced_strategy_counters_report_as_leak():
    sim = Simulator()
    san = Sanitizer(sim)
    strategy = SimpleNamespace(name="reg.dynamic",
                               acquires=Counter("acquires"),
                               releases=Counter("releases"))
    strategy.acquires.add()
    strategy.acquires.add()
    strategy.releases.add()
    cluster = SimpleNamespace(
        server_strategy=strategy, mounts=[],
        server_transports=[SimpleNamespace(name="rr0",
                                           pending_done={0x9: ["region"]})],
    )
    report = san.leak_report(cluster)
    assert len(report) == 2  # one held region + one pending DONE
    with pytest.raises(LeakViolation):
        san.check_teardown(cluster)


# ------------------------------------------------------------- clean traffic
def test_clean_rdma_traffic_records_no_violations():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE)
    lbuf.fill(b"x" * 64)
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.ok
    assert sim.sanitizer.violations == []


def test_sanitized_iozone_point_is_bit_identical_and_clean():
    from repro.experiments.sweep import Point, run_point

    base = Point(
        kind="iozone",
        cluster={"transport": "rdma-rw", "strategy": "cache",
                 "profile": "solaris-sdr"},
        params={"nthreads": 2, "record_bytes": 128 * 1024,
                "ops_per_thread": 6},
    )
    sanitized = Point(kind=base.kind,
                      cluster={**base.cluster, "sanitizer": True},
                      params=base.params)
    assert run_point(base) == run_point(sanitized)


def test_violation_hierarchy_and_recording_mode():
    sim = Simulator()
    san = Sanitizer(sim, raise_on_violation=False)
    mgr = CreditManager(sim, initial_grant=1)
    mgr._outstanding = 5
    san.check_credits(mgr)  # records instead of raising
    assert san.total_violations == 1
    assert san.counts["credits"] == 1
    assert san.violations[0].rule == "credits"
    assert issubclass(CreditViolation, SanitizerError)
    # Deliberately NOT a ProtectionError: sanitizer failures must escape
    # the transport's fault handling and crash loudly.
    from repro.ib.memory import ProtectionError

    assert not issubclass(SanitizerError, ProtectionError)
