"""End-to-end tests of both RPC/RDMA designs over the simulated fabric.

Each test wires a client and server node, runs an echo-style RPC
program, and checks data integrity plus the protocol properties the
paper claims (message counts, exposure, DONE handling, ordering).
"""

import pytest

from repro.core import (
    DynamicRegistration,
    ReadReadClient,
    ReadReadServer,
    ReadWriteClient,
    ReadWriteServer,
    RpcRdmaConfig,
)
from repro.core.regcache import RegistrationCacheStrategy
from repro.core.strategies import AllPhysicalStrategy, FmrStrategy
from repro.ib import Fabric
from repro.rpc import RpcCall, RpcReply, RpcServer
from repro.sim import Simulator

NFS_PROG, NFS_VERS = 100003, 3


class Rig:
    """A connected client/server pair over one RPC/RDMA design."""

    def __init__(self, design="rw", strategy="dynamic", config=None, seed=77,
                 server_threads=8):
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, seed=seed)
        allow_phys = strategy == "all-physical"
        self.client_node = self.fabric.add_node("client", allow_physical=allow_phys)
        self.server_node = self.fabric.add_node("server", allow_physical=allow_phys)
        qc, qs = self.fabric.connect(self.client_node, self.server_node)
        self.config = config or RpcRdmaConfig()
        c_strat = self._make_strategy(strategy, self.client_node)
        s_strat = self._make_strategy(strategy, self.server_node)
        if design == "rw":
            self.client = ReadWriteClient(self.client_node, qc, self.config, c_strat)
            self.server = ReadWriteServer(self.server_node, qs, self.config, s_strat)
        else:
            self.client = ReadReadClient(self.client_node, qc, self.config, c_strat)
            self.server = ReadReadServer(self.server_node, qs, self.config, s_strat)
        self.rpc_server = RpcServer(self.sim, self.server_node.cpu,
                                    nthreads=server_threads)
        self.server.attach(self.rpc_server)

    def _make_strategy(self, kind, node):
        if kind == "dynamic":
            return DynamicRegistration(node)
        if kind == "fmr":
            return FmrStrategy(node)
        if kind == "cache":
            return RegistrationCacheStrategy(node)
        if kind == "all-physical":
            return AllPhysicalStrategy(node)
        raise ValueError(kind)

    def serve(self, handler):
        self.rpc_server.register_program(NFS_PROG, NFS_VERS, handler)

    def run(self, proc):
        result = self.sim.run_until_complete(self.sim.process(proc))
        self.sim.run(until=self.sim.now + 10_000.0)  # drain in-flight traffic
        return result


def echo_handler(sim, delay=2.0):
    def handler(call):
        yield sim.timeout(delay)
        return RpcReply(xid=call.xid, header=call.header,
                        read_payload=call.write_payload)
    return handler


def read_handler(sim, blob):
    """Serves slices of ``blob`` like an NFS READ.

    The requested count travels in the call header (as real NFS READ
    args do) — server code never sees the client-side hint fields.
    """
    def handler(call):
        yield sim.timeout(1.0)
        want = min(int.from_bytes(call.header[:8], "big"), len(blob))
        return RpcReply(xid=call.xid, header=b"OKOK", read_payload=blob[:want])
    return handler


def read_call(size, **kwargs):
    return RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=6,
                   header=size.to_bytes(8, "big"), read_len_hint=size, **kwargs)


@pytest.mark.parametrize("design", ["rw", "rr"])
def test_small_inline_roundtrip(design):
    rig = Rig(design=design)
    rig.serve(echo_handler(rig.sim))

    def proc():
        reply = yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=0, header=b"ping")
        )
        return reply

    reply = rig.run(proc())
    assert reply.header[:4] == b"ping"
    assert reply.read_payload is None


@pytest.mark.parametrize("design", ["rw", "rr"])
@pytest.mark.parametrize("size", [8 * 1024, 128 * 1024, 1024 * 1024])
def test_bulk_read_integrity(design, size):
    rig = Rig(design=design)
    blob = bytes(range(256)) * (size // 256)
    rig.serve(read_handler(rig.sim, blob))

    def proc():
        reply = yield from rig.client.call(
            read_call(size)
        )
        return reply

    reply = rig.run(proc())
    assert reply.read_payload == blob[:size]


@pytest.mark.parametrize("design", ["rw", "rr"])
@pytest.mark.parametrize("size", [4 * 1024, 256 * 1024])
def test_bulk_write_integrity(design, size):
    rig = Rig(design=design)
    seen = {}

    def handler(call):
        yield rig.sim.timeout(1.0)
        seen["data"] = call.write_payload
        return RpcReply(xid=call.xid, header=b"done")

    rig.serve(handler)
    payload = bytes(i % 251 for i in range(size))

    def proc():
        yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=7, header=b"writ",
                    write_payload=payload)
        )

    rig.run(proc())
    assert seen["data"] == payload


@pytest.mark.parametrize("design", ["rw", "rr"])
def test_tiny_write_goes_inline_no_chunks(design):
    rig = Rig(design=design)
    seen = {}

    def handler(call):
        yield rig.sim.timeout(0.5)
        seen["data"] = call.write_payload
        return RpcReply(xid=call.xid, header=b"ok..")

    rig.serve(handler)

    def proc():
        yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=7, header=b"writ",
                    write_payload=b"tiny-payload")
        )

    rig.run(proc())
    assert seen["data"] == b"tiny-payload"
    # Inline path: no RDMA Reads happened at all.
    assert rig.server_node.hca.reads.value == 0
    assert rig.client_node.hca.reads.value == 0


@pytest.mark.parametrize("design", ["rw", "rr"])
def test_long_call_via_read_chunks(design):
    rig = Rig(design=design)
    big_args = bytes(range(256)) * 32  # 8 KB of RPC header
    seen = {}

    def handler(call):
        yield rig.sim.timeout(0.5)
        seen["args"] = call.header
        return RpcReply(xid=call.xid, header=b"ok..")

    rig.serve(handler)

    def proc():
        yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=1, header=big_args)
        )

    rig.run(proc())
    assert seen["args"][: len(big_args)] == big_args
    # The long call was fetched by server-issued RDMA Read.
    assert rig.server_node.hca.reads.value >= len(big_args)


@pytest.mark.parametrize("design", ["rw", "rr"])
def test_long_reply_roundtrip(design):
    rig = Rig(design=design)
    big_result = b"direntry" * 2048  # 16 KB reply header (READDIR-ish)

    def handler(call):
        yield rig.sim.timeout(0.5)
        return RpcReply(xid=call.xid, header=big_result)

    rig.serve(handler)

    def proc():
        reply = yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=16, header=b"rdir",
                    reply_len_hint=32 * 1024)
        )
        return reply

    reply = rig.run(proc())
    assert reply.header[: len(big_result)] == big_result


def test_rw_design_uses_rdma_write_for_read_data():
    rig = Rig(design="rw")
    rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

    def proc():
        yield from rig.client.call(
            read_call(128 * 1024)
        )

    rig.run(proc())
    assert rig.server_node.hca.writes.value >= 128 * 1024  # server wrote
    assert rig.client_node.hca.reads.value == 0             # client never read


def test_rr_design_uses_client_rdma_read_for_read_data():
    rig = Rig(design="rr")
    rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

    def proc():
        yield from rig.client.call(
            read_call(128 * 1024)
        )

    rig.run(proc())
    assert rig.client_node.hca.reads.value >= 128 * 1024   # client fetched
    assert rig.server_node.hca.writes.value == 0            # server never wrote


def test_rw_server_never_exposes_stags():
    """§4.2: in the Read-Write design the server TPT exposes nothing."""
    rig = Rig(design="rw")
    rig.serve(read_handler(rig.sim, bytes(256 * 1024)))

    def proc():
        for _ in range(4):
            yield from rig.client.call(
                read_call(256 * 1024)
            )

    rig.run(proc())
    assert rig.server_node.hca.tpt.remotely_exposed() == []
    assert len(rig.server_node.hca.tpt.stags_exposed_ever) == 0


def test_rr_server_exposes_stags_and_done_releases_them():
    rig = Rig(design="rr")
    rig.serve(read_handler(rig.sim, bytes(256 * 1024)))

    def proc():
        yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=6, header=b"read",
                    read_len_hint=256 * 1024)
        )

    rig.run(proc())
    # Exposure happened during the exchange...
    assert len(rig.server_node.hca.tpt.stags_exposed_ever) >= 1
    # ...but the DONE released everything by the end.
    assert rig.server.pending_done_count == 0
    assert rig.server_node.hca.tpt.remotely_exposed() == []
    assert rig.server.dones_received.events == 1


def test_rr_done_message_costs_an_extra_server_message():
    sizes = {}
    for design in ("rw", "rr"):
        rig = Rig(design=design)
        rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

        def proc():
            yield from rig.client.call(
                read_call(128 * 1024)
            )

        rig.run(proc())
        sizes[design] = rig.client.headers_sent.events
    assert sizes["rr"] == sizes["rw"] + 1  # call + DONE vs call only


def test_rw_read_latency_beats_rr():
    """The paper's headline: fewer messages + no bounce copy => faster READ."""
    times = {}
    for design in ("rw", "rr"):
        rig = Rig(design=design)
        rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

        def proc():
            yield from rig.client.call(
                read_call(128 * 1024)
            )
            return rig.sim.now

        times[design] = rig.run(proc())
    assert times["rw"] < times["rr"]


@pytest.mark.parametrize("strategy", ["dynamic", "fmr", "cache", "all-physical"])
def test_all_strategies_preserve_integrity(strategy):
    rig = Rig(design="rw", strategy=strategy)
    blob = bytes(i % 239 for i in range(512 * 1024))
    rig.serve(read_handler(rig.sim, blob))

    def proc():
        reply = yield from rig.client.call(
            read_call(512 * 1024)
        )
        return reply

    reply = rig.run(proc())
    assert reply.read_payload == blob


def test_cache_strategy_hits_on_repeat_ops():
    rig = Rig(design="rw", strategy="cache")
    rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

    def proc():
        for _ in range(5):
            yield from rig.client.call(
                read_call(128 * 1024)
            )

    rig.run(proc())
    strat = rig.server.strategy
    assert strat.hits.events >= 4  # first op misses, the rest hit
    assert strat.misses.events <= 1


def test_cache_strategy_faster_than_dynamic():
    times = {}
    for strategy in ("dynamic", "cache"):
        rig = Rig(design="rw", strategy=strategy)
        rig.serve(read_handler(rig.sim, bytes(128 * 1024)))

        def proc():
            for _ in range(10):
                yield from rig.client.call(
                    RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=6, header=b"read",
                            read_len_hint=128 * 1024)
                )
            return rig.sim.now

        times[strategy] = rig.run(proc())
    assert times["cache"] < times["dynamic"]


def test_concurrent_calls_all_complete():
    rig = Rig(design="rw")
    blob = bytes(128 * 1024)
    rig.serve(read_handler(rig.sim, blob))
    done = []

    def caller(i):
        reply = yield from rig.client.call(
            read_call(128 * 1024)
        )
        done.append((i, len(reply.read_payload)))

    for i in range(16):
        rig.sim.process(caller(i))
    rig.sim.run()
    assert len(done) == 16
    assert all(n == 128 * 1024 for _, n in done)


def test_credit_limit_caps_outstanding_calls():
    config = RpcRdmaConfig(credits=4)
    rig = Rig(design="rw", config=config)
    rig.serve(echo_handler(rig.sim, delay=50.0))

    def caller():
        yield from rig.client.call(
            RpcCall(prog=NFS_PROG, vers=NFS_VERS, proc=0, header=b"ping")
        )

    for _ in range(12):
        rig.sim.process(caller())
    rig.sim.run()
    assert rig.client.credits.outstanding_peak <= 4
    assert rig.client.credits.waits.events > 0


def test_zero_copy_read_uses_caller_buffer():
    rig = Rig(design="rw")
    blob = bytes(i % 199 for i in range(128 * 1024))
    rig.serve(read_handler(rig.sim, blob))
    app_buffer = rig.client_node.arena.alloc(128 * 1024)

    def proc():
        reply = yield from rig.client.call(
            read_call(128 * 1024, read_buffer=app_buffer)
        )
        return reply

    reply = rig.run(proc())
    # Data landed directly in the application buffer: true zero copy.
    assert app_buffer.peek(0, 128 * 1024) == blob
    assert reply.read_payload == blob
    assert rig.client.zero_copy_reads.events == 1
    assert rig.client.buffered_reads.events == 0
