"""QP multiplexing, sharded serving, striping: the fig13 substrate.

Covers the DESIGN.md §15 invariants: the version-2 lane framing is
inert when off, shared-QP pools stay O(sqrt(N)), lanes keep FIFO order
under adversarial event perturbation, one redial heals every lane on a
killed shared QP without leaking SRQ slots, striped reads/writes
round-trip bytes identically to a single server, and the audit/stats
surfaces aggregate across server nodes.
"""

import math

import pytest

from repro.core.header import (
    RPC_RDMA_VERSION,
    RPC_RDMA_VERSION_MUX,
    MessageType,
    RpcRdmaHeader,
)
from repro.experiments.cluster import Cluster, ClusterConfig
from repro.experiments.topology import MultiCluster, TopologyConfig
from repro.ib.mux import MuxConfig, default_mux_qps
from repro.security import audit_server_exposure
from repro.sim import AllOf


def topo(**kw):
    base = dict(transport="rdma-rw", strategy="dynamic", nclients=8,
                client_hosts=4, mux=True, srq=True, credits=8)
    base.update(kw)
    return TopologyConfig(**base)


def run_all_mounts(mc, payload_for=lambda i: bytes([i % 251 + 1]) * 65536):
    """Create/write/read/verify one file per mount, all concurrently."""
    results = []

    def wl(mount, i):
        payload = payload_for(i)
        nfs = mount.nfs
        fh, _ = yield from nfs.create(nfs.root, f"f{i}")
        n, _ = yield from nfs.write(fh, 0, payload)
        data, eof, _ = yield from nfs.read(fh, 0, len(payload))
        results.append((i, n == len(payload) and data == payload and eof))

    def main():
        procs = [mc.sim.process(wl(m, i)) for i, m in enumerate(mc.mounts)]
        yield AllOf(mc.sim, procs)

    mc.run(main())
    assert len(results) == len(mc.mounts)
    assert all(ok for _, ok in results)


# ---------------------------------------------------------- wire framing
def test_header_v2_roundtrip_carries_lane_fields():
    h = RpcRdmaHeader(xid=7, credits=3, mtype=MessageType.RDMA_MSG,
                      lane=42, lane_seq=9, lane_credits=2)
    wire = h.encode()
    back = RpcRdmaHeader.decode(wire)
    assert (back.lane, back.lane_seq, back.lane_credits) == (42, 9, 2)
    assert int.from_bytes(wire[4:8], "big") == RPC_RDMA_VERSION_MUX


def test_header_without_lane_stays_version1_byte_identical():
    h = RpcRdmaHeader(xid=7, credits=3, mtype=MessageType.RDMA_MSG)
    wire = h.encode()
    assert int.from_bytes(wire[4:8], "big") == RPC_RDMA_VERSION
    back = RpcRdmaHeader.decode(wire)
    assert back.lane is None and back.lane_seq == 0 and back.lane_credits == 0
    # A laneless header must be exactly the pre-mux encoding length:
    # the version-2 words only exist when a lane is set.
    assert len(wire) == len(h.encode())
    assert len(RpcRdmaHeader(xid=7, credits=3, mtype=MessageType.RDMA_MSG,
                             lane=0).encode()) == len(wire) + 12


# ---------------------------------------------------------- pool sizing
def test_default_mux_qps_is_ceil_sqrt():
    for n in (1, 2, 3, 4, 10, 99, 100, 1000):
        assert default_mux_qps(n) == math.ceil(math.sqrt(n))


def test_mux_config_validates():
    with pytest.raises(ValueError):
        MuxConfig(qp_budget=0)
    assert MuxConfig(qp_budget=2).qps_for(100) == 2
    assert MuxConfig().qps_for(0) == 1


def test_qp_count_sqrt_bound_vs_linear():
    """Muxed deployments stay under 2*sqrt(N)+hosts; per-conn is N."""
    for n in (10, 100, 1000):
        mc = MultiCluster(topo(nclients=n))
        assert mc.qp_count() <= 2 * math.isqrt(n) + 4
        per_conn = MultiCluster(topo(nclients=n, mux=False, srq=False))
        assert per_conn.qp_count() == n


def test_srq_sizing_sublinear_and_safe():
    """Mux-mode pools drop the per-mount linear floor but still cover
    every channel's full credit grant (no overcommit)."""
    small = MultiCluster(topo(nclients=10))
    big = MultiCluster(topo(nclients=1000))
    assert big.server_stacks[0].srq.entries < 1000  # sublinear
    for mc in (small, big):
        stack = mc.server_stacks[0]
        grantable = stack.rpcrdma.credits * len(stack.server_transports)
        assert grantable <= stack.srq.entries


# ---------------------------------------------------------- lane FIFO
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_lane_fifo_under_perturbation(seed):
    """The server-side ledger sees every lane in order even when the
    event queue's tie-breaking is adversarially perturbed."""
    mc = MultiCluster(topo(nclients=8, sanitizer=True, perturb_seed=seed))
    run_all_mounts(mc)
    ledgers = [t.lanes for t in mc.server_transports
               if getattr(t, "lanes", None) is not None]
    assert ledgers, "muxed traffic never reached the lane ledger"
    assert sum(led.calls.events for led in ledgers) > 0
    assert sum(led.order_violations.events for led in ledgers) == 0
    assert mc.sim.sanitizer.violations == []


def test_lane_fifo_without_mux_never_allocates_ledger():
    """Dedicated connections never pay for lane accounting."""
    mc = MultiCluster(topo(nclients=4, mux=False, srq=False))
    run_all_mounts(mc)
    assert all(getattr(t, "lanes", None) is None
               for t in mc.server_transports)


# ---------------------------------------------------------- kill + redial
def test_killed_shared_qp_heals_all_lanes_without_srq_leak():
    """One redial revives every lane on the shared channel, and the
    dead QP's parked SRQ slots all come back to the pool."""
    mc = MultiCluster(topo(nclients=6, client_hosts=1))
    mux = next(iter(mc.muxes.values()))
    assert mux.qp_count == 3  # ceil(sqrt(6)) shared channels
    victim = mux.channels[0]
    lanes_on_victim = sum(1 for lane in mux.lanes.values()
                          if lane.channel is victim)

    def killer():
        yield mc.sim.timeout(60.0)  # mid-flight
        qp = victim.qp
        qp.enter_error("injected fault")
        qp.peer.enter_error("injected fault (remote)")

    mc.sim.process(killer())
    run_all_mounts(mc)
    assert lanes_on_victim >= 2
    assert victim.reconnects.events == 1
    # One redial served every lane: the other channels never redialed.
    assert sum(ch.reconnects.events for ch in mux.channels) == 1
    mc.sim.run(until=mc.sim.now + 1_000_000.0)
    for stack in mc.server_stacks:
        assert stack.srq.available == stack.srq.entries
        assert len(stack.server_transports) == mux.qp_count


# ---------------------------------------------------------- striping
def test_striped_roundtrip_matches_single_server():
    """Byte-for-byte: striped reads return exactly what a single
    server returns for the same op sequence."""
    payload = bytes(i % 256 for i in range(300_000))

    def script(nfs):
        fh, _ = yield from nfs.create(nfs.root, "data")
        yield from nfs.write(fh, 0, payload)
        # Overwrite a misaligned span crossing stripe boundaries.
        yield from nfs.write(fh, 70_000, b"\xAA" * 50_000)
        data, eof, attrs = yield from nfs.read(fh, 0, len(payload))
        return data, eof, attrs.size

    single = Cluster(ClusterConfig(transport="rdma-rw", strategy="dynamic"))
    want = single.run(script(single.mounts[0].nfs))

    mc = MultiCluster(TopologyConfig(
        transport="rdma-rw", strategy="dynamic", nclients=1,
        data_servers=3, stripe_unit_bytes=64 * 1024, mux=True, srq=True))
    got = mc.run(script(mc.mounts[0].nfs))
    assert got == want
    # The data really was striped: every data server moved bytes.
    for stack in mc.data_stacks:
        assert stack.node.hca.reads.value > 0


def test_striped_remove_cleans_components():
    mc = MultiCluster(TopologyConfig(
        transport="rdma-rw", strategy="dynamic", nclients=1,
        data_servers=2, mux=True, srq=True))
    nfs = mc.mounts[0].nfs

    def script():
        fh, _ = yield from nfs.create(nfs.root, "victim")
        yield from nfs.write(fh, 0, b"x" * 200_000)
        yield from nfs.remove(nfs.root, "victim")
        entries = []
        for ds in nfs.data:
            entries.extend(e.name for e in (yield from ds.readdir(ds.root)))
        return entries

    assert mc.run(script()) == []


# ---------------------------------------------------------- redirector
def test_redirector_balances_within_one():
    mc = MultiCluster(topo(nclients=10, servers=4))
    counts = mc.redirector.counts()
    assert sum(counts) == 10
    assert max(counts) - min(counts) <= 1
    # Every mount's nfs really points at its assigned shard.
    for m, (mid, idx) in enumerate(mc.redirector.assignments):
        assert mid == m
        stack = mc.server_stacks[idx]
        assert mc.mounts[m].nfs.root == stack.nfs_server.root_handle()


# ------------------------------------------------- multi-node aggregation
def test_audit_aggregates_across_server_nodes():
    """Regression: the single-node audit silently missed K-1 shards."""
    mc = MultiCluster(topo(nclients=8, servers=2, transport="rdma-rr"))
    run_all_mounts(mc)
    mc.sim.run(until=mc.sim.now + 1_000_000.0)
    per_node = [
        audit_server_exposure(stack.node, stack.server_transports)
        for stack in mc.server_stacks
    ]
    # Read-Read exposes server stags on every shard that served reads.
    assert all(r["stags_exposed_ever"] > 0 for r in per_node)
    combined = audit_server_exposure(mc.server_nodes, mc.server_transports)
    assert combined["server_nodes_audited"] == 2
    assert combined["stags_exposed_ever"] == sum(
        r["stags_exposed_ever"] for r in per_node)
    assert combined["recv_registered_bytes"] == sum(
        r["recv_registered_bytes"] for r in per_node)


def test_stats_aggregate_across_server_nodes():
    """Regression: nfsstat/health payloads must carry every shard."""
    mc = MultiCluster(topo(nclients=8, servers=2,
                           **{"telemetry": True}))
    run_all_mounts(mc)
    from repro.telemetry.nfsstat import render_stats, stats_dict

    payload = stats_dict(mc)
    served = {s["labels"].get("server"): s["value"]
              for s in payload["samples"] if s["name"] == "rpc_server_calls"}
    assert served.get("server0", 0) > 0 and served.get("server1", 0) > 0
    shard_counts = [s["value"] for s in payload["samples"]
                    if s["name"] == "shard_mounts"]
    assert sorted(shard_counts) == [4.0, 4.0]
    text = render_stats(mc)
    assert "server=server1" in text and "shared QPs" in text


def test_topology_validation():
    with pytest.raises(ValueError):
        TopologyConfig(servers=0)
    with pytest.raises(ValueError):
        TopologyConfig(transport="tcp-gige")  # multi-node needs RDMA
    with pytest.raises(ValueError):
        TopologyConfig(mux="yes")
    with pytest.raises(ValueError):
        TopologyConfig(cluster=ClusterConfig(), nclients=2)
    assert TopologyConfig(mux=False).mux is None
    assert TopologyConfig(mux={"qp_budget": 2}).mux.qp_budget == 2
