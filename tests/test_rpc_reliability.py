"""Retransmission + duplicate request cache: exactly-once under loss."""

import pytest

from repro.osmodel import CPU, CPUConfig, InterruptController
from repro.rpc import RpcCall, RpcReply, RpcServer, TcpRpcClient, TcpRpcServerTransport
from repro.rpc.drc import DrcDecision, DuplicateRequestCache
from repro.rpc.transport import RpcTimeout
from repro.sim import Simulator
from repro.tcpip import IPOIB_PROFILE, TcpConnection, TcpEndpoint

PROG, VERS = 100003, 3


def rig(retrans_timeout_us=50_000.0, max_retries=4, drc=None, handler_delay=5.0,
        **client_kwargs):
    sim = Simulator()
    eps = []
    for name in ("client", "server"):
        cpu = CPU(sim, CPUConfig(cores=2), name=f"{name}.cpu")
        irq = InterruptController(sim, cpu, name=f"{name}.irq")
        eps.append(TcpEndpoint(sim, cpu, irq, IPOIB_PROFILE, name=name))
    conn = TcpConnection(eps[0], eps[1])
    client = TcpRpcClient(eps[0], conn, retrans_timeout_us=retrans_timeout_us,
                          max_retries=max_retries, **client_kwargs)
    server_transport = TcpRpcServerTransport(eps[1], conn)
    rpc_server = RpcServer(sim, eps[1].cpu, nthreads=4, drc=drc)
    executions = []

    def handler(call):
        executions.append(call.xid)
        yield sim.timeout(handler_delay)
        return RpcReply(xid=call.xid, header=b"OK" + call.header[:2])

    rpc_server.register_program(PROG, VERS, handler)
    server_transport.attach(rpc_server)
    return sim, client, server_transport, rpc_server, executions


# ---------------------------------------------------------------- DRC unit
def test_drc_lifecycle():
    drc = DuplicateRequestCache(max_entries=8)
    assert drc.check(1, PROG, 0)[0] is DrcDecision.NEW
    drc.begin(1, PROG, 0)
    assert drc.check(1, PROG, 0)[0] is DrcDecision.IN_PROGRESS
    reply = RpcReply(xid=1, header=b"done")
    drc.complete(1, PROG, 0, reply)
    decision, cached = drc.check(1, PROG, 0)
    assert decision is DrcDecision.REPLAY
    assert cached is reply


def test_drc_distinguishes_procs():
    drc = DuplicateRequestCache()
    drc.begin(1, PROG, 6)
    assert drc.check(1, PROG, 7)[0] is DrcDecision.NEW


def test_drc_lru_horizon():
    drc = DuplicateRequestCache(max_entries=2)
    for xid in (1, 2, 3):
        drc.begin(xid, PROG, 0)
    # xid 1 aged out: a very late retransmit would re-execute.
    assert drc.check(1, PROG, 0)[0] is DrcDecision.NEW
    assert drc.check(3, PROG, 0)[0] is DrcDecision.IN_PROGRESS


def test_drc_validation():
    with pytest.raises(ValueError):
        DuplicateRequestCache(max_entries=0)


# ---------------------------------------------------------------- end to end
def test_no_loss_no_retransmission():
    sim, client, st, rs, executions = rig()

    def proc():
        reply = yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=0,
                                               header=b"hi"))
        return reply

    reply = sim.run_until_complete(sim.process(proc()))
    assert reply.header[:2] == b"OK"
    assert client.retransmissions.events == 0


def test_lost_reply_recovered_by_retransmission():
    drc = DuplicateRequestCache()
    sim, client, st, rs, executions = rig(drc=drc)
    st.drop_next_replies = 1  # first reply vanishes

    def proc():
        reply = yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                               header=b"cr"))
        return reply

    reply = sim.run_until_complete(sim.process(proc()))
    assert reply.header[:2] == b"OK"
    assert client.retransmissions.events == 1
    assert st.replies_dropped.events == 1
    # The DRC replayed; the handler ran exactly once (exactly-once!).
    assert len(executions) == 1
    assert drc.replays.events == 1


def test_multiple_losses_with_backoff():
    drc = DuplicateRequestCache()
    sim, client, st, rs, executions = rig(drc=drc, max_retries=5)
    st.drop_next_replies = 3

    def proc():
        reply = yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                               header=b"zz"))
        return reply

    reply = sim.run_until_complete(sim.process(proc()))
    assert reply.header[:2] == b"OK"
    assert client.retransmissions.events == 3
    assert len(executions) == 1


def test_slow_handler_duplicate_dropped_not_reexecuted():
    """Retransmit while the original is still executing: the duplicate
    must neither re-execute nor produce a second reply."""
    drc = DuplicateRequestCache()
    sim, client, st, rs, executions = rig(
        drc=drc, retrans_timeout_us=10_000.0, handler_delay=25_000.0
    )

    def proc():
        reply = yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                               header=b"sl"))
        return reply

    reply = sim.run_until_complete(sim.process(proc()))
    assert reply.header[:2] == b"OK"
    assert client.retransmissions.events >= 1
    assert len(executions) == 1
    assert drc.drops.events >= 1


def test_exhausted_retries_raise_timeout():
    drc = DuplicateRequestCache()
    sim, client, st, rs, executions = rig(drc=drc, max_retries=2)
    st.drop_next_replies = 10  # everything vanishes

    def proc():
        try:
            yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                           header=b"xx"))
        except RpcTimeout:
            return "timed-out"
        return "unexpected"

    assert sim.run_until_complete(sim.process(proc())) == "timed-out"


def test_tcp_backoff_capped():
    """Exponential backoff stops doubling at the configured ceiling."""
    sim, client, st, rs, executions = rig(
        retrans_timeout_us=10_000.0, max_retries=5,
        max_retrans_timeout_us=20_000.0,
    )
    st.drop_next_replies = 10

    def proc():
        try:
            yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                           header=b"xx"))
        except RpcTimeout:
            return sim.now
        return None

    elapsed = sim.run_until_complete(sim.process(proc()))
    assert elapsed is not None
    # Capped: 10k + 20k*5 = 110k (plus wire time).  Uncapped doubling
    # would need 10k+20k+40k+80k+160k+320k = 630k.
    assert elapsed < 200_000.0
    assert client.retransmissions.events == 5


def test_tcp_backoff_cap_validation():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2), name="c.cpu")
    irq = InterruptController(sim, cpu, name="c.irq")
    ep = TcpEndpoint(sim, cpu, irq, IPOIB_PROFILE, name="c")
    conn = TcpConnection(ep, ep)
    with pytest.raises(ValueError):
        TcpRpcClient(ep, conn, max_retrans_timeout_us=0.0)


def test_without_drc_retransmission_reexecutes():
    """The hazard the DRC exists to prevent, demonstrated."""
    sim, client, st, rs, executions = rig(drc=None)
    st.drop_next_replies = 1

    def proc():
        reply = yield from client.call(RpcCall(prog=PROG, vers=VERS, proc=8,
                                               header=b"cr"))
        return reply

    sim.run_until_complete(sim.process(proc()))
    assert len(executions) == 2  # re-executed: not exactly-once
