"""Unit tests for Resource / Store / Container contention primitives."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    for tag in "abc":
        sim.process(user(tag, 10.0))
    sim.run()
    assert order == [("start", "a", 0.0), ("start", "b", 10.0), ("start", "c", 20.0)]


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def user(tag, prio, delay):
        yield sim.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(user("low", 5, 1.0))
    sim.process(user("high", -5, 2.0))  # arrives later but higher priority
    sim.run()
    assert order == ["high", "low"]


def test_resource_release_unheld_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    other = Resource(sim, capacity=1).request()
    sim.run()
    with pytest.raises(SimulationError):
        res.release(other)


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    waiting = res.request()
    waiting.cancel()
    sim.run()
    res.release(held)
    sim.run()
    assert res.count == 0  # cancelled request never granted


# ---------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    sim.run()
    assert got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(5.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 5.0)]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    out = []

    def consumer():
        for _ in range(5):
            out.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("a")
    second = store.put("b")
    sim.run()
    assert not second.triggered
    got = store.get()
    sim.run()
    assert got.value == "a"
    assert second.triggered
    assert store.items == ("b",)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put(9)
    ok, item = store.try_get()
    assert ok and item == 9


# ---------------------------------------------------------------- Container
def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    fired = []

    def getter():
        yield tank.get(30)
        fired.append(sim.now)

    def putter():
        yield sim.timeout(4.0)
        yield tank.put(30)

    sim.process(getter())
    sim.process(putter())
    sim.run()
    assert fired == [4.0]
    assert tank.level == 0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=10)
    put = tank.put(5)
    sim.run()
    assert not put.triggered
    got = tank.get(5)
    sim.run()
    assert got.triggered and put.triggered
    assert tank.level == 10


def test_container_init_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=10, init=11)


def test_container_negative_amounts_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=5)
    with pytest.raises(SimulationError):
        tank.get(-1)
    with pytest.raises(SimulationError):
        tank.put(-1)


def test_container_fifo_fairness():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    order = []

    def getter(tag, amount):
        yield tank.get(amount)
        order.append(tag)

    sim.process(getter("big-first", 50))
    sim.process(getter("small-second", 1))

    def feeder():
        yield sim.timeout(1.0)
        yield tank.put(60)

    sim.process(feeder())
    sim.run()
    # FIFO: the big request must be served before the small one.
    assert order == ["big-first", "small-second"]
