"""Tests for the client-side NFS caching layer (CTO consistency model)."""

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.nfs.cache import CachingNfsClient, ClientCacheConfig


def make(nclients=1, **cache_kwargs):
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=nclients))
    caches = [
        CachingNfsClient(m.nfs, c.sim, ClientCacheConfig(**cache_kwargs))
        for m in c.mounts
    ]
    return c, caches


def test_attr_cache_hits_within_timeout():
    c, (cache,) = make(attr_timeout_us=1_000_000.0)

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "f")
        a1 = yield from cache.getattr(fh)   # miss, fills
        a2 = yield from cache.getattr(fh)   # hit
        yield c.sim.timeout(2_000_000.0)
        a3 = yield from cache.getattr(fh)   # expired: miss again
        return a1, a2, a3

    c.run(proc())
    assert cache.attr_hits.events == 1
    assert cache.attr_misses.events == 2


def test_attr_cache_saves_rpcs():
    c, (cache,) = make()

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "f")
        before = cache.inner.ops.events
        for _ in range(10):
            yield from cache.getattr(fh)
        return cache.inner.ops.events - before

    rpcs = c.run(proc())
    assert rpcs == 1  # one fill, nine hits


def test_name_cache():
    c, (cache,) = make()

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "hot-name")
        yield from cache.lookup(cache.root, "hot-name")
        before = cache.inner.ops.events
        for _ in range(5):
            yield from cache.lookup(cache.root, "hot-name")
        return cache.inner.ops.events - before

    assert c.run(proc()) == 0
    assert cache.name_hits.events == 5


def test_cached_read_serves_from_memory():
    c, (cache,) = make()
    blob = bytes(i % 251 for i in range(200_000))

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "data")
        yield from cache.inner.write(fh, 0, blob)
        handle = yield from cache.open(fh)
        first, eof1 = yield from cache.read(handle, 0, len(blob))
        rpcs_before = cache.inner.ops.events
        second, eof2 = yield from cache.read(handle, 0, len(blob))
        return first, second, eof1, eof2, cache.inner.ops.events - rpcs_before

    first, second, eof1, eof2, rpcs = c.run(proc())
    assert first == blob and second == blob
    assert eof1 and eof2
    assert rpcs <= 1  # at most a getattr; no data RPCs on the re-read
    assert cache.read_hits.events > 0


def test_write_back_defers_rpcs_until_flush():
    c, (cache,) = make()

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "wb")
        handle = yield from cache.open(fh)
        before = cache.inner.ops.events
        yield from cache.write(handle, 0, b"x" * 64 * 1024)
        mid = cache.inner.ops.events
        yield from cache.close(handle)
        after = cache.inner.ops.events
        data, _, _ = yield from cache.inner.read(fh, 0, 64 * 1024)
        return before, mid, after, data

    before, mid, after, data = c.run(proc())
    assert mid == before            # writes absorbed by the cache
    assert after > mid              # close flushed + committed
    assert data == b"x" * 64 * 1024


def test_dirty_limit_forces_synchronous_flush():
    c, (cache,) = make(dirty_limit_bytes=128 * 1024)

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "big")
        handle = yield from cache.open(fh)
        before = cache.inner.ops.events
        yield from cache.write(handle, 0, bytes(256 * 1024))
        return cache.inner.ops.events - before

    rpcs = c.run(proc())
    assert rpcs > 0  # crossed the dirty limit: flushed without close


def test_close_to_open_consistency_between_clients():
    c, (alice, bob) = make(nclients=2)

    def story():
        fh, _ = yield from alice.inner.create(alice.root, "shared")
        a = yield from alice.open(fh)
        yield from alice.write(a, 0, b"version-1")
        yield from alice.close(a)

        b = yield from bob.open("/shared")
        data, _ = yield from bob.read(b, 0, 9)
        assert data == b"version-1"

        # Alice rewrites while Bob still has it cached...
        a = yield from alice.open(fh)
        yield from alice.write(a, 0, b"version-2")
        yield from alice.close(a)

        # ...Bob's cached copy may legitimately be stale until re-open:
        stale, _ = yield from bob.read(b, 0, 9)
        assert stale == b"version-1"

        # CTO: a fresh open revalidates and sees version 2.
        b2 = yield from bob.open("/shared")
        fresh, _ = yield from bob.read(b2, 0, 9)
        assert fresh == b"version-2"

    c.run(story())


def test_partial_page_write_rmw_correct():
    c, (cache,) = make()

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "rmw")
        yield from cache.inner.write(fh, 0, b"A" * 1000)
        handle = yield from cache.open(fh)
        yield from cache.write(handle, 100, b"B" * 50)
        yield from cache.close(handle)
        data, _, _ = yield from cache.inner.read(fh, 0, 1000)
        return data

    data = c.run(proc())
    assert data == b"A" * 100 + b"B" * 50 + b"A" * 850


def test_data_cache_respects_budget():
    c, (cache,) = make(data_cache_bytes=8 * 16 * 1024)  # 8 pages

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "big")
        yield from cache.inner.write(fh, 0, bytes(512 * 1024))
        handle = yield from cache.open(fh)
        yield from cache.read(handle, 0, 512 * 1024)

    c.run(proc())
    assert cache.pages.resident_bytes <= 8 * 16 * 1024
    # Evicted clean pages also dropped their content copies.
    assert len(cache._content) <= 8


def test_buffered_reread_beats_direct_io():
    """The motivation trade-off: cached re-reads are memory-speed, at the
    price of coherence staleness the paper's workloads can't accept."""
    c, (cache,) = make()
    size = 1 << 20

    def proc():
        fh, _ = yield from cache.inner.create(cache.root, "hot")
        yield from cache.inner.write(fh, 0, bytes(size))
        handle = yield from cache.open(fh)
        yield from cache.read(handle, 0, size)   # warm it
        t0 = c.sim.now
        yield from cache.read(handle, 0, size)
        cached_time = c.sim.now - t0
        t0 = c.sim.now
        yield from cache.inner.read(fh, 0, size)  # direct: full RPC
        direct_time = c.sim.now - t0
        return cached_time, direct_time

    cached_time, direct_time = c.run(proc())
    assert cached_time < direct_time / 50  # orders of magnitude apart
