"""Tests for both registration caches (server slab-backed + client-side)."""

import pytest

from repro.core.regcache import ClientRegistrationCache, RegistrationCacheStrategy
from repro.experiments import Cluster, ClusterConfig
from repro.ib.fabric import Fabric
from repro.ib.memory import AccessFlags, ProtectionError
from repro.sim import Simulator
from repro.workloads import IozoneParams, run_iozone


def make_node():
    sim = Simulator()
    fabric = Fabric(sim, seed=31)
    return sim, fabric.add_node("n")


# ---------------------------------------------------------------- server cache
def test_server_cache_repeat_acquire_is_free():
    sim, node = make_node()
    cache = RegistrationCacheStrategy(node)

    def proc():
        r1 = yield from cache.acquire(128 * 1024, AccessFlags.LOCAL_WRITE)
        yield from cache.release(r1)
        t0 = sim.now
        r2 = yield from cache.acquire(128 * 1024, AccessFlags.LOCAL_WRITE)
        return sim.now - t0, r1, r2

    cost, r1, r2 = sim.run_until_complete(sim.process(proc()))
    assert cost == 0.0                       # hit: zero registration cost
    assert r2.buffer is r1.buffer            # same slab object recycled
    assert cache.hits.events == 1


def test_server_cache_widens_rights_on_upgrade():
    sim, node = make_node()
    cache = RegistrationCacheStrategy(node)

    def proc():
        r1 = yield from cache.acquire(4096, AccessFlags.LOCAL_WRITE)
        yield from cache.release(r1)
        # Same size class, broader rights: re-registers with the union.
        r2 = yield from cache.acquire(4096, AccessFlags.REMOTE_READ)
        yield from cache.release(r2)
        # Now both narrower requests hit.
        r3 = yield from cache.acquire(4096, AccessFlags.LOCAL_WRITE)
        return r3

    r3 = sim.run_until_complete(sim.process(proc()))
    assert cache.hits.events == 1
    assert r3.mr.access & AccessFlags.REMOTE_READ


def test_server_cache_budget_evicts_and_invalidates():
    sim, node = make_node()
    cache = RegistrationCacheStrategy(node, budget_bytes=2 * 128 * 1024)

    def proc():
        regions = []
        for _ in range(4):
            r = yield from cache.acquire(100 * 1024, AccessFlags.LOCAL_WRITE)
            regions.append(r)
        for r in regions:
            yield from cache.release(r)
        return regions

    regions = sim.run_until_complete(sim.process(proc()))
    assert cache.footprint_bytes <= 2 * 128 * 1024
    # Evicted slab objects had their MRs invalidated.
    assert any(not r.mr.valid for r in regions)


# ---------------------------------------------------------------- client cache
def test_client_cache_wrap_hit_on_same_window():
    sim, node = make_node()
    cache = ClientRegistrationCache(node)
    buf = node.arena.alloc(128 * 1024)

    def proc():
        r1 = yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE)
        yield from cache.release(r1)
        t0 = sim.now
        r2 = yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE)
        return sim.now - t0, r1, r2

    cost, r1, r2 = sim.run_until_complete(sim.process(proc()))
    assert cost == 0.0
    assert r2.mr is r1.mr
    assert cache.hits.events == 1


def test_client_cache_distinct_windows_miss():
    sim, node = make_node()
    cache = ClientRegistrationCache(node)
    buf = node.arena.alloc(256 * 1024)

    def proc():
        yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE,
                              addr=buf.addr, length=128 * 1024)
        yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE,
                              addr=buf.addr + 128 * 1024, length=128 * 1024)

    sim.run_until_complete(sim.process(proc()))
    assert cache.misses.events == 2
    assert cache.cached_entries == 2


def test_client_cache_lru_eviction_deregisters():
    sim, node = make_node()
    cache = ClientRegistrationCache(node, max_entries=2)
    bufs = [node.arena.alloc(4096) for _ in range(3)]

    def proc():
        mrs = []
        for buf in bufs:
            r = yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE)
            mrs.append(r.mr)
        return mrs

    mrs = sim.run_until_complete(sim.process(proc()))
    assert cache.cached_entries == 2
    assert not mrs[0].valid          # oldest evicted and deregistered
    assert mrs[1].valid and mrs[2].valid


def test_client_cache_no_aliasing_after_buffer_freed():
    """The Wyckoff & Wu hazard: a new buffer at a recycled virtual
    address must never hit a stale cached registration."""
    sim, node = make_node()
    cache = ClientRegistrationCache(node)
    buf = node.arena.alloc(4096)

    def phase1():
        r = yield from cache.wrap(buf, AccessFlags.REMOTE_WRITE)
        yield from cache.release(r)
        yield from cache.invalidate_buffer(buf)
        return r.mr

    old_mr = sim.run_until_complete(sim.process(phase1()))
    assert not old_mr.valid
    node.arena.free(buf)
    fresh = node.arena.alloc(4096)  # may or may not reuse the address

    def phase2():
        r = yield from cache.wrap(fresh, AccessFlags.REMOTE_WRITE)
        return r.mr

    new_mr = sim.run_until_complete(sim.process(phase2()))
    assert new_mr is not old_mr
    assert new_mr.valid and new_mr.buffer is fresh


def test_client_cache_ablation_beats_server_cache_alone():
    """The TR's point: once the server cache removes its cost, client
    registration is the next ceiling; caching it too approaches wire."""
    results = {}
    for strategy in ("cache", "client-cache"):
        cluster = Cluster(ClusterConfig(transport="rdma-rw", strategy=strategy))
        results[strategy] = run_iozone(
            cluster, IozoneParams(nthreads=8, ops_per_thread=40)
        ).read_mb_s
    assert results["client-cache"] > 1.15 * results["cache"]
    assert results["client-cache"] < 960.0  # still below the 950 MB/s wire
