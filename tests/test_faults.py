"""Unit tests for the fault-injection plan and injector."""

import math

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.faults import (
    DelaySpike,
    DiskFault,
    FaultPlan,
    MessageLoss,
    QpKill,
    ServerCrash,
    ServerStall,
)


# ---------------------------------------------------------------- plan
def test_plan_empty_property():
    assert FaultPlan().empty
    assert not FaultPlan(qp_kills=(QpKill(at_us=1.0),)).empty
    assert not FaultPlan(message_loss=(MessageLoss(rate=0.5),)).empty


def test_plan_validation():
    with pytest.raises(ValueError):
        MessageLoss(rate=1.5)
    with pytest.raises(ValueError):
        MessageLoss(rate=0.1, start_us=10.0, end_us=5.0)
    with pytest.raises(ValueError):
        DelaySpike(rate=0.1, mean_delay_us=0.0)
    with pytest.raises(ValueError):
        DiskFault(at_us=0.0, count=0)
    with pytest.raises(ValueError):
        ServerStall(at_us=0.0, duration_us=0.0)
    with pytest.raises(ValueError):
        ServerCrash(at_us=0.0, restart_us=-1.0)


def test_chaos_plan_is_deterministic():
    a = FaultPlan.chaos(seed=42, duration_us=1e6, nclients=4)
    b = FaultPlan.chaos(seed=42, duration_us=1e6, nclients=4)
    assert a == b
    c = FaultPlan.chaos(seed=43, duration_us=1e6, nclients=4)
    assert a != c


def test_chaos_plan_shape():
    plan = FaultPlan.chaos(seed=7, duration_us=1e6, nclients=4,
                           loss_rate=0.02, qp_kills=3, disk_faults=2)
    assert len(plan.qp_kills) == 3
    assert len(plan.disk_faults) == 2
    assert len(plan.message_loss) == 1
    assert plan.message_loss[0].rate == 0.02
    # Kills land in the middle 80% and target valid clients.
    for kill in plan.qp_kills:
        assert 0.1e6 <= kill.at_us <= 0.9e6
        assert 0 <= kill.client_index < 4
    # Sorted by fire time.
    times = [k.at_us for k in plan.qp_kills]
    assert times == sorted(times)
    # The loss window closes when the soak does.
    assert plan.message_loss[0].end_us == 1e6
    assert not math.isinf(plan.message_loss[0].end_us)


# ---------------------------------------------------------------- injector
def test_unarmed_cluster_has_no_hooks():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    assert c.faults is None
    assert c.server_node.hca.port.fault_hook is None
    for node in c.client_nodes:
        assert node.hca.port.fault_hook is None


def test_arming_installs_and_disarm_removes_hooks():
    c = Cluster(ClusterConfig(transport="rdma-rw", backend="raid",
                              fault_plan=FaultPlan(seed=1)))
    assert c.faults is not None
    assert c.server_node.hca.port.fault_hook is c.faults
    assert all(n.hca.port.fault_hook is c.faults for n in c.client_nodes)
    assert all(d.fault_hook is c.faults for d in c.raid.disks)
    c.faults.disarm()
    assert c.server_node.hca.port.fault_hook is None
    assert all(d.fault_hook is None for d in c.raid.disks)


def test_double_arm_rejected():
    c = Cluster(ClusterConfig(transport="rdma-rw", fault_plan=FaultPlan(seed=1)))
    with pytest.raises(RuntimeError):
        c.faults.arm()


def test_drop_next_is_surgical():
    """drop_next eats exactly N messages at exactly the named node."""
    c = Cluster(ClusterConfig(transport="rdma-rw", fault_plan=FaultPlan(seed=1)))
    c.faults.drop_next("client0", 2)
    port = c.mounts[0].node.hca.port
    assert c.faults.drop_message(port) is True
    assert c.faults.drop_message(port) is True
    assert c.faults.drop_message(port) is False
    assert c.faults.messages_dropped.events == 2
    # Other nodes untouched.
    c.faults.drop_next("client0", 1)
    assert c.faults.drop_message(c.server_node.hca.port) is False


def test_scheduled_qp_kill_fires():
    c = Cluster(ClusterConfig(
        transport="rdma-rw",
        fault_plan=FaultPlan(seed=1, qp_kills=(QpKill(at_us=500.0),)),
    ))
    nfs = c.mounts[0].nfs

    def workload():
        for i in range(40):
            fh, _ = yield from nfs.create(nfs.root, f"f{i}")
            yield from nfs.write(fh, 0, bytes(16 * 1024))
        return "done"

    assert c.run(workload()) == "done"
    assert c.faults.qp_kills_fired.events == 1
    assert c.mounts[0].transport.reconnects.events >= 1
    summary = c.faults.summary()
    assert summary["qp kills"] == 1


def test_disk_faults_retry_transparently():
    c = Cluster(ClusterConfig(
        transport="rdma-rw", backend="raid",
        fault_plan=FaultPlan(seed=1, disk_faults=(DiskFault(at_us=0.0, count=2),)),
    ))
    nfs = c.mounts[0].nfs
    # Blow past the page cache so reads hit the spindles.
    big = 4 * 1024 * 1024

    def workload():
        fh, _ = yield from nfs.create(nfs.root, "blob")
        yield from nfs.write_large(fh, 0, bytes(big))
        yield from nfs.commit(fh, 0, big)
        data, _ = yield from nfs.read_large(fh, 0, big)
        return len(data)

    assert c.run(workload()) == big
    summary = c.faults.summary()
    assert summary["disk errors armed"] == 2
    assert summary["disk errors hit"] == 2


def test_fault_free_plan_changes_nothing():
    """An armed-but-empty plan must not perturb simulated timings."""
    def elapsed(plan):
        c = Cluster(ClusterConfig(transport="rdma-rw", fault_plan=plan))
        nfs = c.mounts[0].nfs

        def workload():
            fh, _ = yield from nfs.create(nfs.root, "t")
            yield from nfs.write(fh, 0, bytes(256 * 1024))
            yield from nfs.read(fh, 0, 256 * 1024)

        c.run(workload())
        return c.sim.now

    assert elapsed(None) == elapsed(FaultPlan(seed=99))
