"""Static purity lint: one known-bad snippet per rule, plus the
suppression syntax and the idioms that must stay exempt."""

from pathlib import Path

from repro.check.purity import RULES, lint_file, lint_paths, lint_source


def rules_of(source):
    return [f.rule for f in lint_source(source, "snippet.py")]


# ------------------------------------------------------------ wallclock
def test_wallclock_time_calls_are_flagged():
    assert rules_of("import time\nt = time.time()\n") == ["wallclock"]
    assert rules_of("import time\nt = time.perf_counter()\n") == ["wallclock"]
    assert rules_of(
        "from datetime import datetime\nd = datetime.now()\n"
    ) == ["wallclock"]
    assert rules_of(
        "import datetime\nd = datetime.date.today()\n"
    ) == ["wallclock"]


def test_simulated_time_is_not_wallclock():
    assert rules_of("def f(sim):\n    return sim.now\n") == []
    # An unrelated method that happens to be called .time() is fine.
    assert rules_of("t = span.time()\n") == []


# -------------------------------------------------------- global-random
def test_global_random_draws_are_flagged():
    assert rules_of("import random\nx = random.random()\n") == ["global-random"]
    assert rules_of("import random\nx = random.randint(1, 6)\n") == ["global-random"]
    assert rules_of("import random\nrandom.shuffle(items)\n") == ["global-random"]
    assert rules_of("import random\nrandom.seed(42)\n") == ["global-random"]


def test_seeded_instances_are_allowed():
    assert rules_of("import random\nrng = random.Random(42)\n") == []
    assert rules_of(
        "import random\nrng = random.Random(1)\nx = rng.random()\n"
    ) == []


# ------------------------------------------------------- set-iteration
def test_iterating_a_set_binding_is_flagged():
    src = "waiters = set()\nfor w in waiters:\n    w.wake()\n"
    assert rules_of(src) == ["set-iteration"]


def test_set_comprehension_and_wrappers_are_flagged():
    src = "pending = {1, 2}\nout = [x for x in pending]\n"
    assert rules_of(src) == ["set-iteration"]
    src = "pending = {1, 2}\nout = list(pending)\n"
    assert rules_of(src) == ["set-iteration"]


def test_set_typed_attribute_is_tracked():
    src = (
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self.live = set()\n"
        "    def drain(self):\n"
        "        for x in self.live:\n"
        "            x.close()\n"
    )
    assert rules_of(src) == ["set-iteration"]


def test_iterating_a_set_literal_in_place_is_flagged():
    # No binding involved: the literal (or set() call) is the iterable.
    assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["set-iteration"]
    assert rules_of("out = [x for x in set(items)]\n") == ["set-iteration"]


def test_sorted_iteration_of_a_set_is_exempt():
    # sorted() imposes a deterministic order, so it is the sanctioned
    # way to walk a set.
    src = "names = {'b', 'a'}\nfor n in sorted(names):\n    print(n)\n"
    assert rules_of(src) == []


def test_list_iteration_is_not_flagged():
    assert rules_of("items = [1, 2]\nfor x in items:\n    pass\n") == []


# ------------------------------------------------------ mutable-default
def test_mutable_default_args_are_flagged():
    assert rules_of("def f(x, acc=[]):\n    pass\n") == ["mutable-default"]
    assert rules_of("def f(x, acc={}):\n    pass\n") == ["mutable-default"]
    assert rules_of("def f(*, acc=set()):\n    pass\n") == ["mutable-default"]
    assert rules_of("def f(acc=list()):\n    pass\n") == ["mutable-default"]


def test_immutable_defaults_are_fine():
    assert rules_of("def f(x=3, y=(), z=None, s=''):\n    pass\n") == []


# --------------------------------------------------------- suppression
def test_per_rule_suppression_comment():
    src = "import time\nt = time.time()  # lint-sim: allow[wallclock]\n"
    assert rules_of(src) == []


def test_suppression_only_matches_its_rule():
    src = "import time\nt = time.time()  # lint-sim: allow[global-random]\n"
    assert rules_of(src) == ["wallclock"]


def test_wildcard_suppression():
    src = "import random\nx = random.random()  # lint-sim: allow[*]\n"
    assert rules_of(src) == []


# ------------------------------------------------------------ plumbing
def test_every_rule_has_a_failing_snippet():
    snippets = {
        "wallclock": "import time\nt = time.time()\n",
        "global-random": "import random\nx = random.random()\n",
        "set-iteration": "s = set()\nfor x in s:\n    pass\n",
        "mutable-default": "def f(a=[]):\n    pass\n",
    }
    assert set(snippets) == set(RULES)
    for rule, src in snippets.items():
        assert rules_of(src) == [rule]


def test_finding_rendering_and_file_api(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    findings = lint_file(bad)
    assert len(findings) == 1
    rendered = str(findings[0])
    assert "[wallclock]" in rendered
    assert rendered.startswith(f"{bad}:2:")


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("def f(a=[]):\n    pass\n")
    (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
    findings = lint_paths([tmp_path])
    assert [f.rule for f in findings] == ["mutable-default"]


def test_repo_tree_is_clean():
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert lint_paths([src]) == []
