"""Edge-case tests for the IB substrate: CQ semantics, QP flush,
meters, counters, and the wire model's accounting."""

import pytest

from repro.ib import (
    AccessFlags,
    CompletionQueue,
    CqeStatus,
    Fabric,
    HCAConfig,
    LinkConfig,
    QPError,
    RdmaWriteWR,
    RecvWR,
    Segment,
    SendWR,
)
from repro.ib.verbs import Cqe, Opcode, QPState
from repro.sim import Simulator


def make_pair(**kwargs):
    sim = Simulator()
    fabric = Fabric(sim, seed=77)
    a = fabric.add_node("a", **kwargs)
    b = fabric.add_node("b", **kwargs)
    qa, qb = fabric.connect(a, b)
    return sim, a, b, qa, qb


def reg(sim, node, size, access):
    buf = node.arena.alloc(size)

    def proc():
        return (yield from node.hca.tpt.register(buf, access))

    return buf, sim.run_until_complete(sim.process(proc()))


# ---------------------------------------------------------------- CQ
def test_cq_poll_returns_fifo():
    sim = Simulator()
    cq = CompletionQueue(sim)
    for i in range(3):
        cq.push(Cqe(wr_id=i, opcode=Opcode.SEND, status=CqeStatus.SUCCESS))
    assert [cq.poll().wr_id for _ in range(3)] == [0, 1, 2]
    assert cq.poll() is None
    assert cq.total == 3


def test_cq_wait_blocks_until_push():
    sim = Simulator()
    cq = CompletionQueue(sim)
    seen = []

    def waiter():
        cqe = yield cq.wait()
        seen.append((cqe.wr_id, sim.now))

    def pusher():
        yield sim.timeout(7.0)
        cq.push(Cqe(wr_id=42, opcode=Opcode.RECV, status=CqeStatus.SUCCESS))

    sim.process(waiter())
    sim.process(pusher())
    sim.run()
    assert seen == [(42, 7.0)]


def test_cq_wait_consumes_queued_first():
    sim = Simulator()
    cq = CompletionQueue(sim)
    cq.push(Cqe(wr_id=1, opcode=Opcode.SEND, status=CqeStatus.SUCCESS))
    ev = cq.wait()
    sim.run()
    assert ev.value.wr_id == 1
    assert len(cq) == 0


def test_unsignaled_wr_produces_no_cqe():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    wr = RdmaWriteWR(
        sim, local=[Segment(lmr.stag, lmr.addr, 64)],
        remote=Segment(rmr.stag, rmr.addr, 64), signaled=False,
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion  # per-WR event still fires

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.ok
    assert len(qa.send_cq) == 0  # nothing delivered to the CQ


# ---------------------------------------------------------------- QP flush
def test_qp_error_flushes_queued_wrs():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    recv = RecvWR(sim, [Segment(lmr.stag, lmr.addr, 4096)])
    qb.post_recv(recv)
    qb.enter_error("test teardown")
    assert recv.cqe.status is CqeStatus.WR_FLUSH_ERR
    assert qb.state is QPState.ERROR


def test_post_to_errored_qp_raises():
    sim, a, b, qa, qb = make_pair()
    qa.enter_error("dead")
    with pytest.raises(QPError):
        qa.post_send(SendWR(sim, inline=b"x"))
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    with pytest.raises(QPError):
        qa.post_recv(RecvWR(sim, [Segment(lmr.stag, lmr.addr, 4096)]))


def test_recv_wr_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        RecvWR(sim, [])


def test_send_wr_exactly_one_source():
    sim = Simulator()
    with pytest.raises(ValueError):
        SendWR(sim)  # neither inline nor segments
    with pytest.raises(ValueError):
        SendWR(sim, inline=b"x", segments=[Segment(1, 0, 1)])


def test_segment_rejects_negative_length():
    with pytest.raises(ValueError):
        Segment(1, 0, -5)


# ---------------------------------------------------------------- wire model
def test_port_byte_counters():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 8192, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 8192)]))
    send = SendWR(sim, inline=bytes(5000))

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    sim.run_until_complete(sim.process(proc()))
    assert a.hca.port.tx.bytes_carried.value == 5000
    assert b.hca.port.rx.bytes_carried.value == 5000


def test_port_utilization_meter_moves():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 1 << 20, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 1 << 20)]))
    send = SendWR(sim, inline=bytes(1 << 20))
    a.hca.port.tx.meter.reset_window()  # exclude registration setup time

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    sim.run_until_complete(sim.process(proc()))
    tx_util, _ = a.hca.port.utilization()
    assert tx_util > 0.5  # the link was busy most of this window


def test_link_config_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_mb_s=0)
    with pytest.raises(ValueError):
        LinkConfig(latency_us=-1)
    with pytest.raises(ValueError):
        LinkConfig(chunk_bytes=100)


def test_wire_time_includes_overhead():
    cfg = LinkConfig(bandwidth_mb_s=1000.0, per_message_overhead_bytes=1000)
    assert cfg.wire_time_us(0) == pytest.approx(1.0)
    assert cfg.wire_time_us(9000) == pytest.approx(10.0)


# ---------------------------------------------------------------- counters
def test_hca_op_counters_track_bytes():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 64 * 1024, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 64 * 1024,
                    AccessFlags.REMOTE_WRITE | AccessFlags.REMOTE_READ)

    def proc():
        wr = RdmaWriteWR(sim, local=[Segment(lmr.stag, lmr.addr, 64 * 1024)],
                         remote=Segment(rmr.stag, rmr.addr, 64 * 1024))
        yield from a.hca.post_send(qa, wr)
        yield wr.completion
        from repro.ib.verbs import RdmaReadWR

        rd = RdmaReadWR(sim, local=[Segment(lmr.stag, lmr.addr, 32 * 1024)],
                        remote=Segment(rmr.stag, rmr.addr, 32 * 1024))
        yield from a.hca.post_send(qa, rd)
        yield rd.completion

    sim.run_until_complete(sim.process(proc()))
    assert a.hca.writes.value == 64 * 1024
    assert a.hca.reads.value == 32 * 1024


def test_fabric_rejects_duplicate_names_and_self_connect():
    sim = Simulator()
    fabric = Fabric(sim)
    n = fabric.add_node("x")
    with pytest.raises(ValueError):
        fabric.add_node("x")
    with pytest.raises(ValueError):
        fabric.connect(n, n)


def test_deterministic_stags_across_runs():
    def stags():
        sim = Simulator()
        fabric = Fabric(sim, seed=123)
        node = fabric.add_node("n")
        buf = node.arena.alloc(4096)

        def proc():
            mr = yield from node.hca.tpt.register(buf, AccessFlags.REMOTE_READ)
            return mr.stag

        return sim.run_until_complete(sim.process(proc()))

    assert stags() == stags()
