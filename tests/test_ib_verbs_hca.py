"""Integration tests for the verbs/HCA/fabric data path.

These exercise the InfiniBand rules the paper's transport depends on:
channel sends need pre-posted receives, RDMA ops validate steering tags
at the target, Write→Send completion ordering holds, Read→Send ordering
does not, and IRD/ORD caps outstanding reads at 8.
"""

import pytest

from repro.ib import (
    AccessFlags,
    CqeStatus,
    Fabric,
    HCAConfig,
    LinkConfig,
    ProtectionError,
    QPError,
    RdmaReadWR,
    RdmaWriteWR,
    RecvWR,
    Segment,
    SendWR,
)
from repro.ib.memory import RegistrationCosts
from repro.sim import Simulator


def make_pair(hca_config=None, link_config=None, **node_kwargs):
    sim = Simulator()
    fabric = Fabric(sim, seed=42)
    kw = dict(hca_config=hca_config, link_config=link_config, **node_kwargs)
    a = fabric.add_node("a", **kw)
    b = fabric.add_node("b", **kw)
    qa, qb = fabric.connect(a, b)
    return sim, a, b, qa, qb


def reg(sim, node, size, access):
    buf = node.arena.alloc(size)

    def proc():
        return (yield from node.hca.tpt.register(buf, access))

    mr = sim.run_until_complete(sim.process(proc()))
    return buf, mr


# ---------------------------------------------------------------- send/recv
def test_send_delivers_inline_payload_to_posted_recv():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    recv = RecvWR(sim, [Segment(rmr.stag, rmr.addr, 4096)])
    qb.post_recv(recv)
    send = SendWR(sim, inline=b"ping-payload")

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion
        yield recv.completion

    sim.run_until_complete(sim.process(proc()))
    assert send.cqe.ok and recv.cqe.ok
    assert recv.cqe.byte_len == len(b"ping-payload")
    assert rbuf.peek(0, 12) == b"ping-payload"


def test_send_gather_list_concatenates():
    sim, a, b, qa, qb = make_pair()
    s1buf, s1mr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    s2buf, s2mr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    s1buf.fill(b"AAAA")
    s2buf.fill(b"BBBB")
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 4096)]))
    send = SendWR(sim, segments=[
        Segment(s1mr.stag, s1mr.addr, 4), Segment(s2mr.stag, s2mr.addr, 4)
    ])

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    sim.run_until_complete(sim.process(proc()))
    assert rbuf.peek(0, 8) == b"AAAABBBB"


def test_send_without_recv_rnr_retries_then_succeeds():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    send = SendWR(sim, inline=b"late")

    def sender():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    def late_receiver():
        yield sim.timeout(100.0)  # after a couple of RNR retries
        qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 4096)]))

    sim.process(late_receiver())
    sim.run_until_complete(sim.process(sender()))
    assert send.cqe.ok
    assert a.hca.rnr_events.events >= 1
    assert rbuf.peek(0, 4) == b"late"


def test_send_rnr_retry_exhaustion_errors_qp():
    cfg = HCAConfig(rnr_retry_us=10.0, rnr_retry_limit=2)
    sim, a, b, qa, qb = make_pair(hca_config=cfg)
    send = SendWR(sim, inline=b"never-received")

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    sim.run_until_complete(sim.process(proc()))
    assert send.cqe.status is CqeStatus.RNR_RETRY_EXC
    with pytest.raises(QPError):
        qa.post_send(SendWR(sim, inline=b"after-death"))


def test_send_overflowing_recv_buffer_errors():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 64, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 64)]))
    send = SendWR(sim, inline=b"x" * 128)

    def proc():
        yield from a.hca.post_send(qa, send)
        yield send.completion

    sim.run_until_complete(sim.process(proc()))
    assert send.cqe.status is CqeStatus.REM_ACCESS_ERR


def test_recv_matching_is_fifo():
    sim, a, b, qa, qb = make_pair()
    rbuf, rmr = reg(sim, b, 8192, AccessFlags.LOCAL_WRITE)
    r1 = RecvWR(sim, [Segment(rmr.stag, rmr.addr, 64)])
    r2 = RecvWR(sim, [Segment(rmr.stag, rmr.addr + 64, 64)])
    qb.post_recv(r1)
    qb.post_recv(r2)

    def proc():
        w1 = SendWR(sim, inline=b"first")
        w2 = SendWR(sim, inline=b"second")
        yield from a.hca.post_send(qa, w1)
        yield from a.hca.post_send(qa, w2)
        yield w2.completion

    sim.run_until_complete(sim.process(proc()))
    assert r1.received == b"first"
    assert r2.received == b"second"


# ---------------------------------------------------------------- RDMA write
def test_rdma_write_places_bytes_no_remote_cqe_no_remote_cpu():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    lbuf.fill(b"written-by-rdma")
    b_cpu_before = b.cpu.busy_us_total
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 15)],
        remote=Segment(rmr.stag, rmr.addr, 15),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.ok
    assert rbuf.peek(0, 15) == b"written-by-rdma"
    assert len(qb.recv_cq) == 0  # one-sided: no remote CQE
    assert b.cpu.busy_us_total == b_cpu_before  # no remote CPU involvement


def test_rdma_write_bad_stag_remote_access_error():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 16)],
        remote=Segment(0xDEAD_BEEF, 0x1000_0000, 16),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.status is CqeStatus.REM_ACCESS_ERR
    assert b.hca.tpt.protection_faults.events == 1


def test_rdma_write_without_remote_write_permission_rejected():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_READ)  # read-only exposure
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 16)],
        remote=Segment(rmr.stag, rmr.addr, 16),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.status is CqeStatus.REM_ACCESS_ERR


# ---------------------------------------------------------------- RDMA read
def test_rdma_read_fetches_remote_bytes():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_READ)
    rbuf.fill(b"server-side-data")
    wr = RdmaReadWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 16)],
        remote=Segment(rmr.stag, rmr.addr, 16),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.ok
    assert lbuf.peek(0, 16) == b"server-side-data"


def test_rdma_read_without_remote_read_permission_rejected():
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 4096, AccessFlags.REMOTE_WRITE)
    wr = RdmaReadWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 16)],
        remote=Segment(rmr.stag, rmr.addr, 16),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.status is CqeStatus.REM_ACCESS_ERR


def test_outstanding_reads_capped_by_ird_ord():
    cfg = HCAConfig(max_ird=8, max_ord=8, read_response_setup_us=50.0)
    sim, a, b, qa, qb = make_pair(hca_config=cfg)
    lbuf, lmr = reg(sim, a, 64 * 4096, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 64 * 4096, AccessFlags.REMOTE_READ)
    wrs = [
        RdmaReadWR(
            sim,
            local=[Segment(lmr.stag, lmr.addr + i * 4096, 4096)],
            remote=Segment(rmr.stag, rmr.addr + i * 4096, 4096),
        )
        for i in range(32)
    ]

    def proc():
        for wr in wrs:
            yield from a.hca.post_send(qa, wr)
        for wr in wrs:
            yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert all(wr.cqe.ok for wr in wrs)
    assert b.hca.max_inbound_reads_seen <= 8


def test_write_then_send_completion_ordering_guaranteed():
    """§4.2: the send's completion implies the prior write completed."""
    sim, a, b, qa, qb = make_pair()
    lbuf, lmr = reg(sim, a, 256 * 1024, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 256 * 1024, AccessFlags.REMOTE_WRITE)
    rcvbuf, rcvmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rcvmr.stag, rcvmr.addr, 4096)]))
    completions = []
    big_write = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 256 * 1024)],
        remote=Segment(rmr.stag, rmr.addr, 256 * 1024),
    )
    small_send = SendWR(sim, inline=b"reply")
    big_write.completion.callbacks.append(lambda ev: completions.append("write"))
    small_send.completion.callbacks.append(lambda ev: completions.append("send"))

    def proc():
        yield from a.hca.post_send(qa, big_write)
        yield from a.hca.post_send(qa, small_send)
        yield small_send.completion

    sim.run_until_complete(sim.process(proc()))
    assert completions == ["write", "send"]


def test_read_then_send_ordering_not_guaranteed():
    """§4.1: a later send can complete before an earlier (slow) read."""
    cfg = HCAConfig(read_response_setup_us=500.0)
    sim, a, b, qa, qb = make_pair(hca_config=cfg)
    lbuf, lmr = reg(sim, a, 256 * 1024, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 256 * 1024, AccessFlags.REMOTE_READ)
    rcvbuf, rcvmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rcvmr.stag, rcvmr.addr, 4096)]))
    completions = []
    slow_read = RdmaReadWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 256 * 1024)],
        remote=Segment(rmr.stag, rmr.addr, 256 * 1024),
    )
    fast_send = SendWR(sim, inline=b"overtakes")
    slow_read.completion.callbacks.append(lambda ev: completions.append("read"))
    fast_send.completion.callbacks.append(lambda ev: completions.append("send"))

    def proc():
        yield from a.hca.post_send(qa, slow_read)
        yield from a.hca.post_send(qa, fast_send)
        yield slow_read.completion
        yield fast_send.completion

    sim.run_until_complete(sim.process(proc()))
    assert completions == ["send", "read"]


def test_fence_restores_read_send_ordering():
    cfg = HCAConfig(read_response_setup_us=500.0)
    sim, a, b, qa, qb = make_pair(hca_config=cfg)
    lbuf, lmr = reg(sim, a, 256 * 1024, AccessFlags.LOCAL_WRITE)
    rbuf, rmr = reg(sim, b, 256 * 1024, AccessFlags.REMOTE_READ)
    rcvbuf, rcvmr = reg(sim, b, 4096, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rcvmr.stag, rcvmr.addr, 4096)]))
    completions = []
    slow_read = RdmaReadWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 256 * 1024)],
        remote=Segment(rmr.stag, rmr.addr, 256 * 1024),
    )
    fenced_send = SendWR(sim, inline=b"waits", fence=True)
    slow_read.completion.callbacks.append(lambda ev: completions.append("read"))
    fenced_send.completion.callbacks.append(lambda ev: completions.append("send"))

    def proc():
        yield from a.hca.post_send(qa, slow_read)
        yield from a.hca.post_send(qa, fenced_send)
        yield fenced_send.completion

    sim.run_until_complete(sim.process(proc()))
    assert completions == ["read", "send"]


# ---------------------------------------------------------------- physical mode
def test_global_stag_write_honoured_only_when_enabled():
    from repro.ib.phys import GLOBAL_STAG

    sim = Simulator()
    fabric = Fabric(sim, seed=9)
    server = fabric.add_node("server")
    client = fabric.add_node("client", allow_physical=True)  # client trusts server
    q_server, q_client = fabric.connect(server, client)

    target = client.arena.alloc(4096)
    lbuf, lmr = reg(sim, server, 4096, AccessFlags.LOCAL_WRITE)
    lbuf.fill(b"phys-write")
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 10)],
        remote=Segment(GLOBAL_STAG, target.addr, 10),
    )

    def proc():
        yield from server.hca.post_send(q_server, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.ok
    assert target.peek(0, 10) == b"phys-write"


def test_global_stag_rejected_when_disabled():
    from repro.ib.phys import GLOBAL_STAG

    sim, a, b, qa, qb = make_pair()  # b does not allow physical
    lbuf, lmr = reg(sim, a, 4096, AccessFlags.LOCAL_WRITE)
    target = b.arena.alloc(4096)
    wr = RdmaWriteWR(
        sim,
        local=[Segment(lmr.stag, lmr.addr, 8)],
        remote=Segment(GLOBAL_STAG, target.addr, 8),
    )

    def proc():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(proc()))
    assert wr.cqe.status is CqeStatus.REM_ACCESS_ERR


# ---------------------------------------------------------------- wire timing
def test_transfer_time_matches_bandwidth():
    link = LinkConfig(bandwidth_mb_s=1000.0, latency_us=2.0,
                      per_message_overhead_bytes=0, chunk_bytes=32 * 1024)
    sim, a, b, qa, qb = make_pair(link_config=link,
                                  hca_config=HCAConfig(wqe_process_us=0.0, post_cpu_us=0.0))
    rbuf, rmr = reg(sim, b, 128 * 1024, AccessFlags.LOCAL_WRITE)
    qb.post_recv(RecvWR(sim, [Segment(rmr.stag, rmr.addr, 128 * 1024)]))
    recv_time = []
    send = SendWR(sim, inline=bytes(128 * 1024))

    def proc():
        t0 = sim.now
        yield from a.hca.post_send(qa, send)
        yield send.completion
        recv_time.append(sim.now - t0)

    sim.run_until_complete(sim.process(proc()))
    # 128 KB at 1000 MB/s = 131.072 us + 2*2us propagation + 2us ack.
    assert recv_time[0] == pytest.approx(131.072 + 6.0, abs=1.0)


def test_concurrent_flows_share_ingress_bandwidth():
    """Two senders into one receiver halve each other's throughput."""
    link = LinkConfig(bandwidth_mb_s=1000.0, latency_us=0.0,
                      per_message_overhead_bytes=0)
    sim = Simulator()
    fabric = Fabric(sim, seed=5)
    free_reg = RegistrationCosts(
        pin_cpu_per_page_us=0.0, unpin_cpu_per_page_us=0.0,
        reg_tpt_base_us=0.0, reg_tpt_per_page_us=0.0,
        dereg_tpt_base_us=0.0, dereg_tpt_per_page_us=0.0,
    )
    hca_cfg = HCAConfig(wqe_process_us=0.0, post_cpu_us=0.0, registration=free_reg)
    dst = fabric.add_node("dst", link_config=link, hca_config=hca_cfg)
    s1 = fabric.add_node("s1", link_config=link, hca_config=hca_cfg)
    s2 = fabric.add_node("s2", link_config=link, hca_config=hca_cfg)
    q1s, q1d = fabric.connect(s1, dst)
    q2s, q2d = fabric.connect(s2, dst)

    def write_to(src, qp, size):
        lbuf = src.arena.alloc(size)

        def proc():
            lmr = yield from src.hca.tpt.register(lbuf, AccessFlags.LOCAL_WRITE)
            rbuf = dst.arena.alloc(size)
            rmr = yield from dst.hca.tpt.register(rbuf, AccessFlags.REMOTE_WRITE)
            wr = RdmaWriteWR(
                sim,
                local=[Segment(lmr.stag, lmr.addr, size)],
                remote=Segment(rmr.stag, rmr.addr, size),
            )
            yield from src.hca.post_send(qp, wr)
            yield wr.completion
            return sim.now

        return sim.process(proc())

    size = 1024 * 1024
    p1 = write_to(s1, q1s, size)
    p2 = write_to(s2, q2s, size)
    sim.run()
    # Serial time would be ~1049us each; sharing makes both finish ~2x later.
    assert p1.value == pytest.approx(p2.value, rel=0.05)
    assert p1.value > 1.8 * (size / 1000.0)
