"""Golden-equivalence tests for the zero-copy / sparse-store refactor.

The JSON files under ``tests/golden/`` were captured from the seed
implementation (real-bytes data plane, bytearray inodes) *before* the
zero-copy refactor landed.  These tests re-run the same grid of
workload points through the current code and assert that every
simulated metric — elapsed microseconds, bandwidth, CPU utilization,
operation counts — is bit-identical.  The data plane may move payload
descriptors instead of bytes, but simulated time must not move by a
nanosecond.

Regenerate (only when deliberately changing simulated behaviour)::

    PYTHONPATH=src python -m tests.test_golden_figures --capture

``test_full_figure_tables`` re-runs the complete quick-scale fig 5-7
tables (a few minutes of CPU); it is skipped unless
``REPRO_GOLDEN_FULL=1`` so the tier-1 suite stays fast.  The small grid
below covers every transport (RR, RW, IPoIB, GigE), every registration
strategy, both backends, multi-client, OLTP, PostMark and the security
audit in a few seconds.
"""

from __future__ import annotations

import json
import os
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The equivalence grid.  Every entry is picklable/JSON-able so the
#: capture script, this test, and the parallel-sweep equivalence test
#: can all share it verbatim.
GRID = [
    {"name": "rr-dyn-128k-t1", "kind": "iozone",
     "cluster": {"transport": "rdma-rr", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"nthreads": 1, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "rr-dyn-1m-t2", "kind": "iozone",
     "cluster": {"transport": "rdma-rr", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"nthreads": 2, "record_bytes": 1 << 20, "ops_per_thread": 8}},
    {"name": "rw-dyn-128k-t2", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"nthreads": 2, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "rw-dyn-1m-t1", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"nthreads": 1, "record_bytes": 1 << 20, "ops_per_thread": 8}},
    {"name": "rw-fmr-128k-t2", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "fmr", "profile": "solaris-sdr"},
     "params": {"nthreads": 2, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "rw-cache-128k-t2", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "cache", "profile": "solaris-sdr"},
     "params": {"nthreads": 2, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "rw-phys-128k-t1", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "all-physical", "profile": "linux-sdr"},
     "params": {"nthreads": 1, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "ipoib-128k-t1", "kind": "iozone",
     "cluster": {"transport": "tcp-ipoib", "strategy": "dynamic", "profile": "linux-sdr"},
     "params": {"nthreads": 1, "record_bytes": 128 * 1024, "ops_per_thread": 10}},
    {"name": "gige-128k-t1", "kind": "iozone",
     "cluster": {"transport": "tcp-gige", "strategy": "dynamic", "profile": "linux-ddr-raid"},
     "params": {"nthreads": 1, "record_bytes": 128 * 1024, "ops_per_thread": 6}},
    {"name": "raid-2client", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "all-physical",
                 "profile": "linux-ddr-raid", "backend": "raid",
                 "cache_bytes": 16 << 20, "nclients": 2},
     "params": {"nthreads": 1, "record_bytes": 1 << 20,
                "file_bytes": 8 << 20, "ops_per_thread": None}},
    {"name": "rw-buffered-stable", "kind": "iozone",
     "cluster": {"transport": "rdma-rw", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"nthreads": 1, "record_bytes": 128 * 1024, "ops_per_thread": 8,
                "direct_io": False, "stable_writes": True}},
    {"name": "oltp-cache", "kind": "oltp",
     "cluster": {"transport": "rdma-rw", "strategy": "cache", "profile": "solaris-sdr"},
     "params": {"readers": 6, "writers": 2, "log_writers": 1,
                "datafile_bytes": 8 << 20, "ops_per_thread": 3}},
    {"name": "oltp-ipoib", "kind": "oltp",
     "cluster": {"transport": "tcp-ipoib", "strategy": "dynamic", "profile": "linux-sdr"},
     "params": {"readers": 4, "writers": 2, "log_writers": 1,
                "datafile_bytes": 4 << 20, "ops_per_thread": 2}},
    {"name": "postmark-rw", "kind": "postmark",
     "cluster": {"transport": "rdma-rw", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"initial_files": 40, "transactions": 120, "nthreads": 2}},
    {"name": "postmark-ipoib-cache", "kind": "postmark",
     "cluster": {"transport": "tcp-ipoib", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {"initial_files": 30, "transactions": 80, "nthreads": 2,
                "use_client_cache": True}},
    {"name": "security-rr", "kind": "security",
     "cluster": {"transport": "rdma-rr", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {}},
    {"name": "security-rw", "kind": "security",
     "cluster": {"transport": "rdma-rw", "strategy": "dynamic", "profile": "solaris-sdr"},
     "params": {}},
]


def _profiles():
    from repro.analysis import LINUX_DDR_RAID, LINUX_SDR, SOLARIS_SDR
    return {p.name: p for p in (SOLARIS_SDR, LINUX_SDR, LINUX_DDR_RAID)}


def _build_cluster(spec):
    from repro.experiments.cluster import Cluster, ClusterConfig
    kwargs = dict(spec["cluster"])
    kwargs["profile"] = _profiles()[kwargs["profile"]]
    return Cluster(ClusterConfig(**kwargs))


def run_point(spec) -> dict:
    """Run one grid point and return its simulated metrics as a dict."""
    cluster = _build_cluster(spec)
    kind = spec["kind"]
    if kind == "iozone":
        from repro.workloads import IozoneParams, run_iozone
        r = run_iozone(cluster, IozoneParams(**spec["params"]))
        return {
            "write_mb_s": r.write_mb_s, "read_mb_s": r.read_mb_s,
            "write_elapsed_us": r.write_elapsed_us,
            "read_elapsed_us": r.read_elapsed_us,
            "bytes_per_phase": r.bytes_per_phase,
            "client_cpu_read": r.client_cpu_read,
            "client_cpu_write": r.client_cpu_write,
            "server_cpu_read": r.server_cpu_read,
        }
    if kind == "oltp":
        from repro.workloads import OltpParams, run_oltp
        r = run_oltp(cluster, OltpParams(**spec["params"]))
        return {
            "ops_total": r.ops_total, "elapsed_us": r.elapsed_us,
            "ops_per_s": r.ops_per_s,
            "client_cpu_us_per_op": r.client_cpu_us_per_op,
            "bytes_read": r.bytes_read, "bytes_written": r.bytes_written,
        }
    if kind == "postmark":
        from repro.workloads import PostmarkParams, run_postmark
        r = run_postmark(cluster, PostmarkParams(**spec["params"]))
        return {
            "transactions": r.transactions, "elapsed_us": r.elapsed_us,
            "txns_per_s": r.txns_per_s, "created": r.created,
            "deleted": r.deleted, "bytes_read": r.bytes_read,
            "bytes_written": r.bytes_written,
        }
    if kind == "security":
        from repro.security import audit_server_exposure
        from repro.workloads import IozoneParams, run_iozone
        run_iozone(cluster, IozoneParams(nthreads=4, ops_per_thread=20))
        cluster.sim.run(until=cluster.sim.now + 100_000.0)
        report = audit_server_exposure(cluster.server_node,
                                       cluster.server_transports)
        return {k: report[k] for k in ("stags_exposed_ever", "exposed_regions_now",
                                       "pending_done_ops", "protection_faults")}
    raise ValueError(kind)


def _figure_tables() -> dict:
    from repro.experiments import figures
    out = {}
    for fig in ("fig5", "fig6", "fig7"):
        result = getattr(figures, f"run_{fig}")("quick")
        out[fig] = {"headers": result.headers, "rows": result.rows}
    return out


# ---------------------------------------------------------------- tests
def _load(name: str):
    path = GOLDEN_DIR / name
    if not path.exists():
        import pytest
        pytest.skip(f"golden file {name} not captured")
    with open(path) as fh:
        return json.load(fh)


def test_golden_grid_points():
    golden = _load("seed_points.json")
    for spec in GRID:
        got = run_point(spec)
        want = golden[spec["name"]]
        assert got == want, (
            f"point {spec['name']} diverged from seed capture:\n"
            f"  got  {got}\n  want {want}"
        )


def test_full_figure_tables():
    if os.environ.get("REPRO_GOLDEN_FULL") != "1":
        import pytest
        pytest.skip("set REPRO_GOLDEN_FULL=1 to re-run full fig5-7 tables")
    golden = _load("seed_figures.json")
    got = _figure_tables()
    for fig, want in golden.items():
        assert got[fig]["headers"] == want["headers"]
        assert got[fig]["rows"] == want["rows"], f"{fig} table diverged"


# ---------------------------------------------------------------- capture
def _capture(full: bool) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    points = {}
    for spec in GRID:
        points[spec["name"]] = run_point(spec)
        print(f"captured {spec['name']}")
    with open(GOLDEN_DIR / "seed_points.json", "w") as fh:
        json.dump(points, fh, indent=1, sort_keys=True)
    print(f"wrote {GOLDEN_DIR / 'seed_points.json'}")
    if full:
        tables = _figure_tables()
        with open(GOLDEN_DIR / "seed_figures.json", "w") as fh:
            json.dump(tables, fh, indent=1, sort_keys=True)
        print(f"wrote {GOLDEN_DIR / 'seed_figures.json'}")


if __name__ == "__main__":
    import sys
    _capture(full="--full" in sys.argv)
