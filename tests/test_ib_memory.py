"""Unit tests for arenas, memory regions and the TPT."""

import pytest

from repro.ib.memory import (
    PAGE_SIZE,
    AccessFlags,
    MemoryArena,
    ProtectionError,
    RegistrationCosts,
    TranslationProtectionTable,
    pages_spanned,
)
from repro.osmodel import CPU, CPUConfig
from repro.sim import DeterministicRNG, Simulator


def make_tpt(sim=None, costs=None):
    sim = sim or Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    tpt = TranslationProtectionTable(
        sim, cpu, costs or RegistrationCosts(), DeterministicRNG(7, "t")
    )
    return sim, cpu, tpt


# ---------------------------------------------------------------- arena
def test_arena_alloc_and_resolve():
    arena = MemoryArena()
    buf = arena.alloc(10000)
    found, off = arena.resolve(buf.addr + 100, 500)
    assert found is buf and off == 100


def test_arena_resolve_miss():
    arena = MemoryArena()
    buf = arena.alloc(4096)
    with pytest.raises(ProtectionError):
        arena.resolve(buf.addr + buf.length + PAGE_SIZE, 1)


def test_arena_resolve_overrun_rejected():
    arena = MemoryArena()
    buf = arena.alloc(4096)
    with pytest.raises(ProtectionError):
        arena.resolve(buf.addr + 4000, 200)


def test_arena_allocations_page_aligned_and_guarded():
    arena = MemoryArena()
    a = arena.alloc(100)
    b = arena.alloc(100)
    assert a.addr % PAGE_SIZE == 0 and b.addr % PAGE_SIZE == 0
    assert b.addr - a.addr >= 2 * PAGE_SIZE  # guard page between


def test_arena_free():
    arena = MemoryArena()
    buf = arena.alloc(4096)
    arena.free(buf)
    with pytest.raises(ProtectionError):
        arena.resolve(buf.addr, 1)
    with pytest.raises(ValueError):
        arena.free(buf)


def test_arena_zero_alloc_rejected():
    with pytest.raises(ValueError):
        MemoryArena().alloc(0)


def test_buffer_fill_peek_roundtrip():
    arena = MemoryArena()
    buf = arena.alloc(64)
    buf.fill(b"hello", offset=10)
    assert buf.peek(10, 5) == b"hello"
    with pytest.raises(ValueError):
        buf.fill(b"x" * 65)


def test_pages_spanned():
    assert pages_spanned(0, 1) == 1
    assert pages_spanned(0, PAGE_SIZE) == 1
    assert pages_spanned(0, PAGE_SIZE + 1) == 2
    assert pages_spanned(PAGE_SIZE - 1, 2) == 2  # straddles a boundary
    assert pages_spanned(0, 0) == 0
    assert pages_spanned(0, 128 * 1024) == 32


# ---------------------------------------------------------------- registration
def test_register_returns_valid_mr_with_unique_stag():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    b1, b2 = arena.alloc(4096), arena.alloc(4096)

    def proc():
        mr1 = yield from tpt.register(b1, AccessFlags.REMOTE_READ)
        mr2 = yield from tpt.register(b2, AccessFlags.REMOTE_WRITE)
        return mr1, mr2

    mr1, mr2 = sim.run_until_complete(sim.process(proc()))
    assert mr1.valid and mr2.valid
    assert mr1.stag != mr2.stag
    assert 0 < mr1.stag < 2**32


def test_registration_cost_scales_with_pages():
    costs = RegistrationCosts(
        pin_cpu_per_page_us=0.0, reg_tpt_base_us=10.0, reg_tpt_per_page_us=2.0
    )
    sim, cpu, tpt = make_tpt(costs=costs)
    arena = MemoryArena()
    buf = arena.alloc(8 * PAGE_SIZE)

    def proc():
        yield from tpt.register(buf, AccessFlags.REMOTE_READ)

    sim.run_until_complete(sim.process(proc()))
    assert sim.now == pytest.approx(10.0 + 8 * 2.0)


def test_tpt_engine_serializes_concurrent_registrations():
    costs = RegistrationCosts(
        pin_cpu_per_page_us=0.0, reg_tpt_base_us=100.0, reg_tpt_per_page_us=0.0
    )
    sim, cpu, tpt = make_tpt(costs=costs)
    arena = MemoryArena()
    ends = []

    def proc():
        buf = arena.alloc(PAGE_SIZE)
        yield from tpt.register(buf, AccessFlags.REMOTE_READ)
        ends.append(sim.now)

    for _ in range(3):
        sim.process(proc())
    sim.run()
    assert ends == [100.0, 200.0, 300.0]  # serialized, not parallel


def test_pinning_runs_on_cpu_in_parallel():
    costs = RegistrationCosts(
        pin_cpu_per_page_us=10.0, reg_tpt_base_us=0.0, reg_tpt_per_page_us=0.0,
    )
    sim, cpu, tpt = make_tpt(costs=costs)
    arena = MemoryArena()
    ends = []

    def proc():
        buf = arena.alloc(PAGE_SIZE)
        yield from tpt.register(buf, AccessFlags.REMOTE_READ)
        ends.append(sim.now)

    for _ in range(2):
        sim.process(proc())
    sim.run()
    assert ends == [10.0, 10.0]  # two cores pin concurrently


def test_deregister_invalidates_and_unpins():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    buf = arena.alloc(PAGE_SIZE * 4)

    def proc():
        mr = yield from tpt.register(buf, AccessFlags.REMOTE_READ)
        assert buf.pinned_pages == 4
        yield from tpt.deregister(mr)
        return mr

    mr = sim.run_until_complete(sim.process(proc()))
    assert not mr.valid
    assert buf.pinned_pages == 0
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, mr.addr, 1, AccessFlags.REMOTE_READ)


def test_deregister_is_idempotent():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    buf = arena.alloc(PAGE_SIZE)

    def proc():
        mr = yield from tpt.register(buf, AccessFlags.REMOTE_READ)
        yield from tpt.deregister(mr)
        yield from tpt.deregister(mr)  # no-op, no error

    sim.run_until_complete(sim.process(proc()))
    assert tpt.deregistrations.events == 1


# ---------------------------------------------------------------- lookup / protection
def _registered_mr(access=AccessFlags.REMOTE_READ, size=PAGE_SIZE):
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    buf = arena.alloc(size)

    def proc():
        return (yield from tpt.register(buf, access))

    mr = sim.run_until_complete(sim.process(proc()))
    return tpt, mr, buf


def test_lookup_valid_access():
    tpt, mr, buf = _registered_mr(AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE)
    assert tpt.lookup(mr.stag, mr.addr, 100, AccessFlags.REMOTE_READ) is mr
    assert tpt.lookup(mr.stag, mr.addr, 100, AccessFlags.REMOTE_WRITE) is mr


def test_lookup_unknown_stag_faults():
    tpt, mr, buf = _registered_mr()
    with pytest.raises(ProtectionError):
        tpt.lookup((mr.stag + 1) % 2**32 or 1, mr.addr, 1, AccessFlags.REMOTE_READ)
    assert tpt.protection_faults.events == 1


def test_lookup_wrong_permission_faults():
    tpt, mr, buf = _registered_mr(AccessFlags.REMOTE_READ)
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, mr.addr, 1, AccessFlags.REMOTE_WRITE)


def test_lookup_out_of_bounds_faults():
    tpt, mr, buf = _registered_mr(size=PAGE_SIZE)
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, mr.addr + PAGE_SIZE - 10, 100, AccessFlags.REMOTE_READ)
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, mr.addr - 1, 10, AccessFlags.REMOTE_READ)


def test_mr_read_write_through_offsets():
    tpt, mr, buf = _registered_mr(AccessFlags.REMOTE_WRITE | AccessFlags.REMOTE_READ)
    mr.write(mr.addr + 64, b"payload")
    assert mr.read(mr.addr + 64, 7) == b"payload"
    assert buf.peek(64, 7) == b"payload"


def test_mr_access_after_invalidate_rejected():
    tpt, mr, buf = _registered_mr()
    mr.invalidate()
    with pytest.raises(ProtectionError):
        mr.read(mr.addr, 1)


def test_exposure_audit_tracks_remote_mrs():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()

    def proc():
        local = yield from tpt.register(arena.alloc(PAGE_SIZE), AccessFlags.LOCAL_WRITE)
        remote = yield from tpt.register(arena.alloc(PAGE_SIZE), AccessFlags.REMOTE_READ)
        return local, remote

    local, remote = sim.run_until_complete(sim.process(proc()))
    exposed = tpt.remotely_exposed()
    assert remote in exposed and local not in exposed
    assert remote.stag in tpt.stags_exposed_ever


def test_registration_window_subset_of_buffer():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    buf = arena.alloc(4 * PAGE_SIZE)

    def proc():
        mr = yield from tpt.register(
            buf, AccessFlags.REMOTE_READ, addr=buf.addr + PAGE_SIZE, length=PAGE_SIZE
        )
        return mr

    mr = sim.run_until_complete(sim.process(proc()))
    assert mr.npages == 1
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, buf.addr, 1, AccessFlags.REMOTE_READ)  # outside window


def test_registration_window_outside_buffer_rejected():
    sim, cpu, tpt = make_tpt()
    arena = MemoryArena()
    buf = arena.alloc(PAGE_SIZE)

    def proc():
        yield from tpt.register(buf, AccessFlags.REMOTE_READ, addr=buf.addr, length=2 * PAGE_SIZE)

    with pytest.raises(ValueError):
        sim.run_until_complete(sim.process(proc()))
