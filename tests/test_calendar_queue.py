"""Scheduler-equivalence property tests.

The contract both simulator cores must honour: events fire in
``(when, scheduling order)`` — exactly the order a single global heap
keyed by ``(when, push_seq)`` would produce.  The bucketed calendar
queue (pure python) and the nowq+heap layout (compiled) are just faster
layouts of that order, so we drive each core against a tiny reference
heap model through hypothesis-generated schedules with dense
same-instant ties, mid-drain rescheduling and ``run(until=...)``
boundary cases.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim import _pyengine  # noqa: E402


def _cores():
    """(name, module) pairs for every core importable here."""
    cores = [("python", _pyengine)]
    try:
        from repro.sim import engine

        if engine.ACTIVE_CORE == "c":
            cores.append(("c", engine._cengine))
        else:
            from repro.sim._build import load_cengine

            cengine = load_cengine()
            if cengine is not None:
                cores.append(("c", cengine))
    except ImportError:
        pass
    return cores


CORES = _cores()

# Dense 0.0 weighting: the workload's same-instant bursts are the case
# the calendar queue is tuned for, so ties must dominate the search.
DELAYS = st.sampled_from([0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 1.5, 2.0, 3.0])

#: each op is (delay, child_delay-or-None): the event fires `delay`
#: from t=0 and, mid-drain, schedules a child `child_delay` later.
OPS = st.lists(st.tuples(DELAYS, st.one_of(st.none(), DELAYS)), max_size=30)

UNTIL = st.one_of(st.none(), st.sampled_from([0.0, 0.5, 1.0, 2.0, 2.5, 7.0]))


def reference_order(ops, until):
    """Oracle: one global heap keyed by (when, push_seq)."""
    import heapq

    heap, seq = [], 0
    for i, (delay, child_delay) in enumerate(ops):
        heapq.heappush(heap, (delay, seq, i, child_delay))
        seq += 1

    def drain(limit):
        nonlocal seq
        out = []
        while heap and (limit is None or heap[0][0] <= limit):
            when, _s, ident, child_delay = heapq.heappop(heap)
            out.append(ident)
            if child_delay is not None:
                heapq.heappush(heap, (when + child_delay, seq,
                                      ("child", ident), None))
                seq += 1
        return out

    first = drain(until) if until is not None else []
    return first, drain(None)


def simulator_order(core, ops, until):
    """The same schedule driven through a real Simulator core."""
    sim = core.Simulator()
    fired = []

    def spawn(ident, delay, child_delay):
        ev = core.Event(sim)

        def on_fire(_ev, ident=ident, child_delay=child_delay):
            fired.append(ident)
            if child_delay is not None:
                spawn(("child", ident), child_delay, None)

        ev.callbacks.append(on_fire)
        ev.succeed(None, delay)

    for i, (delay, child_delay) in enumerate(ops):
        spawn(i, delay, child_delay)

    if until is not None:
        sim.run(until=until)
        first = list(fired)
        fired.clear()
        sim.run()
        return first, fired
    sim.run()
    return [], fired


@pytest.mark.parametrize("corename,core", CORES, ids=[n for n, _ in CORES])
@settings(deadline=None, max_examples=150)
@given(ops=OPS, until=UNTIL)
def test_dequeue_order_matches_reference_heap(corename, core, ops, until):
    ref_first, ref_rest = reference_order(ops, until)
    sim_first, sim_rest = simulator_order(core, ops, until)
    assert sim_first == ref_first, f"{corename}: run(until={until}) prefix diverged"
    assert sim_rest == ref_rest, f"{corename}: drain order diverged"


@pytest.mark.parametrize("corename,core", CORES, ids=[n for n, _ in CORES])
def test_same_instant_fifo_ties(corename, core):
    """100 events at one instant fire in exact scheduling order."""
    sim = core.Simulator()
    fired = []
    for i in range(100):
        ev = core.Event(sim)
        ev.callbacks.append(lambda _e, i=i: fired.append(i))
        ev.succeed(None, 5.0)
    sim.run()
    assert fired == list(range(100))


@pytest.mark.parametrize("corename,core", CORES, ids=[n for n, _ in CORES])
def test_run_until_fires_events_at_boundary(corename, core):
    """run(until=t) fires events scheduled exactly at t, not beyond."""
    sim = core.Simulator()
    fired = []
    for delay in (1.0, 2.0, 2.0, 3.0):
        ev = core.Event(sim)
        ev.callbacks.append(lambda _e, d=delay: fired.append(d))
        ev.succeed(None, delay)
    sim.run(until=2.0)
    assert fired == [1.0, 2.0, 2.0]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1.0, 2.0, 2.0, 3.0]


def test_both_cores_available_under_forced_c():
    """When REPRO_SIM_CORE=c the parametrized grid must include both legs."""
    import os

    if os.environ.get("REPRO_SIM_CORE", "").strip().lower() == "c":
        assert [n for n, _ in CORES] == ["python", "c"]
