"""Property-based chaos tests: exactly-once and durability under loss.

Hypothesis drives randomized fault schedules (message loss rates, QP
kill times) against a live cluster; the invariants checked are the two
the recovery machinery promises:

* every non-idempotent NFS procedure the server runs, it runs exactly
  once per (xid, proc) — retransmits and redials never re-execute;
* every acknowledged WRITE is readable after recovery — no lost
  acknowledged data.

Each example is a full cluster build + workload, so ``max_examples`` is
kept small; any failure reproduces from the printed seeds alone.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import SOLARIS_SDR
from repro.core.config import RpcRdmaConfig
from repro.experiments import Cluster, ClusterConfig
from repro.faults import FaultPlan, MessageLoss, QpKill
from repro.nfs.protocol import Nfs3Proc

NFS_PROG, NFS_VERS = 100003, 3
NON_IDEMPOTENT = {Nfs3Proc.CREATE, Nfs3Proc.REMOVE, Nfs3Proc.RENAME}


def _instrument(cluster):
    executions: dict = {}
    original = cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)]

    def wrapped(call):
        key = (call.xid, call.proc)
        executions[key] = executions.get(key, 0) + 1
        return (yield from original(call))

    cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)] = wrapped
    return executions


def _chaos_cluster(plan_seed, loss_rate, kill_times):
    profile = replace(
        SOLARIS_SDR,
        rpcrdma=replace(RpcRdmaConfig(), reply_timeout_us=30_000.0),
    )
    plan = FaultPlan(
        seed=plan_seed,
        message_loss=(MessageLoss(rate=loss_rate),) if loss_rate > 0 else (),
        qp_kills=tuple(QpKill(at_us=t) for t in kill_times),
    )
    return Cluster(ClusterConfig(transport="rdma-rw", profile=profile,
                                 fault_plan=plan))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    plan_seed=st.integers(0, 2**16),
    loss_rate=st.floats(0.0, 0.08),
    kill_times=st.lists(st.floats(100.0, 300_000.0), max_size=2),
)
def test_nonidempotent_exactly_once_under_loss(plan_seed, loss_rate, kill_times):
    c = _chaos_cluster(plan_seed, loss_rate, kill_times)
    nfs = c.mounts[0].nfs
    executions = _instrument(c)
    results = []

    def workload():
        for i in range(6):
            fh, _ = yield from nfs.create(nfs.root, f"f{i}")
            yield from nfs.write(fh, 0, bytes([i]) * 4096)
            if i % 2:
                yield from nfs.rename(nfs.root, f"f{i}", nfs.root, f"g{i}")
        yield from nfs.remove(nfs.root, "f0")
        entries = yield from nfs.readdir(nfs.root)
        results.append(sorted(e.name for e in entries))

    c.sim.process(workload())
    c.sim.run(until=c.sim.now + 600_000_000.0)

    # The workload always completes despite the schedule.
    assert results == [sorted(["f2", "f4", "g1", "g3", "g5"])]
    # Exactly-once for every non-idempotent procedure the server saw.
    for (xid, proc), count in executions.items():
        if proc in NON_IDEMPOTENT:
            assert count == 1, (xid, proc, count)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    plan_seed=st.integers(0, 2**16),
    loss_rate=st.floats(0.0, 0.08),
    kill_time=st.floats(100.0, 200_000.0),
    payloads=st.lists(st.binary(min_size=1, max_size=8192),
                      min_size=1, max_size=5),
)
def test_acked_writes_durable_after_recovery(plan_seed, loss_rate, kill_time,
                                             payloads):
    c = _chaos_cluster(plan_seed, loss_rate, [kill_time])
    nfs = c.mounts[0].nfs
    results = []

    def workload():
        fh, _ = yield from nfs.create(nfs.root, "journal")
        offset = 0
        acked = []
        for payload in payloads:
            yield from nfs.write(fh, offset, payload)
            acked.append((offset, payload))  # acknowledged: must persist
            offset += len(payload)
        # Read every acknowledged extent back after all faults.
        for off, payload in acked:
            data, _, _ = yield from nfs.read(fh, off, len(payload))
            assert data == payload, f"lost acknowledged write at {off}"
        results.append(len(acked))

    c.sim.process(workload())
    c.sim.run(until=c.sim.now + 600_000_000.0)
    assert results == [len(payloads)]
