"""NFS end-to-end tests across every transport and backend."""

import pytest

from repro.analysis import SOLARIS_SDR
from repro.experiments import Cluster, ClusterConfig
from repro.nfs import NfsError
from repro.nfs.protocol import Nfs3Status

ALL_TRANSPORTS = ["rdma-rw", "rdma-rr", "tcp-ipoib", "tcp-gige"]


def cluster(**kwargs):
    return Cluster(ClusterConfig(**kwargs))


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_nfs_file_lifecycle(transport):
    c = cluster(transport=transport)
    nfs = c.mounts[0].nfs
    blob = bytes(i % 241 for i in range(200_000))

    def proc():
        fh, attrs = yield from nfs.create(nfs.root, "data.bin")
        written, attrs = yield from nfs.write(fh, 0, blob)
        assert written == len(blob)
        assert attrs.size == len(blob)
        data, eof, attrs = yield from nfs.read(fh, 0, len(blob))
        assert eof
        return data

    assert c.run(proc()) == blob


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_nfs_namespace_via_transport(transport):
    c = cluster(transport=transport)
    nfs = c.mounts[0].nfs

    def proc():
        d, _ = yield from nfs.mkdir(nfs.root, "projects")
        f, _ = yield from nfs.create(d, "notes.txt")
        yield from nfs.write(f, 0, b"hello")
        s, _ = yield from nfs.symlink(d, "latest", "notes.txt")
        assert (yield from nfs.readlink(s)) == "notes.txt"
        fh2, attrs = yield from nfs.walk("/projects/notes.txt")
        assert attrs.size == 5
        entries = yield from nfs.readdir(d)
        assert sorted(e.name for e in entries) == ["latest", "notes.txt"]
        yield from nfs.rename(d, "notes.txt", nfs.root, "promoted.txt")
        data, _, _ = yield from (
            nfs.read((yield from nfs.walk("/promoted.txt"))[0], 0, 10)
        )
        return data

    assert c.run(proc()) == b"hello"


def test_nfs_enoent_surfaces_as_status():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        try:
            yield from nfs.lookup(nfs.root, "missing")
        except NfsError as exc:
            return exc.status
        return None

    assert c.run(proc()) is Nfs3Status.NOENT


def test_nfs_getattr_setattr():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "f")
        yield from nfs.write(fh, 0, bytes(1000))
        attrs = yield from nfs.setattr(fh, size=100)
        assert attrs.size == 100
        again = yield from nfs.getattr(fh)
        return again.size

    assert c.run(proc()) == 100


def test_nfs_access_and_fsstat():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        granted = yield from nfs.access(nfs.root)
        stat = yield from nfs.fsstat()
        return granted, stat

    granted, stat = c.run(proc())
    assert granted == 0x3F
    assert stat.total_bytes > 0


@pytest.mark.parametrize("transport", ["rdma-rw", "rdma-rr", "tcp-ipoib"])
def test_nfs_large_readdir_long_reply(transport):
    """A directory big enough that its listing exceeds the inline size."""
    c = cluster(transport=transport)
    nfs = c.mounts[0].nfs

    def proc():
        d, _ = yield from nfs.mkdir(nfs.root, "big")
        for i in range(200):
            yield from nfs.create(d, f"file-{i:04d}.dat")
        entries = yield from nfs.readdir(d)
        return entries

    entries = c.run(proc())
    assert len(entries) == 200
    assert entries[0].name == "file-0000.dat"


@pytest.mark.parametrize("transport", ["rdma-rw", "rdma-rr"])
@pytest.mark.parametrize("strategy", ["dynamic", "fmr", "cache", "all-physical"])
def test_nfs_rdma_strategies_integrity(transport, strategy):
    c = cluster(transport=transport, strategy=strategy)
    nfs = c.mounts[0].nfs
    blob = bytes(i % 233 for i in range(512 * 1024))

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "x")
        yield from nfs.write(fh, 0, blob)
        data, _, _ = yield from nfs.read(fh, 0, len(blob))
        return data

    assert c.run(proc()) == blob


def test_nfs_raid_backend_roundtrip_with_commit():
    c = cluster(backend="raid", cache_bytes=16 << 20)
    nfs = c.mounts[0].nfs
    blob = bytes(range(256)) * 2048  # 512 KB

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "ondisk")
        yield from nfs.write(fh, 0, blob)
        yield from nfs.commit(fh)
        data, _, _ = yield from nfs.read(fh, 0, len(blob))
        return data

    assert c.run(proc()) == blob
    disk_writes = sum(d.bytes_written.value for d in c.raid.disks)
    assert disk_writes >= len(blob)


def test_nfs_multiple_clients_share_namespace():
    c = cluster(nclients=3)

    def writer():
        nfs = c.mounts[0].nfs
        fh, _ = yield from nfs.create(nfs.root, "shared.txt")
        yield from nfs.write(fh, 0, b"from client zero")

    c.run(writer())

    def reader(mount):
        fh, _ = yield from mount.nfs.walk("/shared.txt")
        data, _, _ = yield from mount.nfs.read(fh, 0, 100)
        return data

    for mount in c.mounts[1:]:
        assert c.run(reader(mount)) == b"from client zero"


def test_nfs_zero_copy_direct_io_read():
    c = cluster(transport="rdma-rw")
    nfs = c.mounts[0].nfs
    node = c.mounts[0].node
    blob = bytes(i % 227 for i in range(256 * 1024))

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "dio")
        yield from nfs.write(fh, 0, blob)
        app_buf = node.arena.alloc(256 * 1024)
        data, eof, _ = yield from nfs.read(fh, 0, 256 * 1024, read_buffer=app_buf)
        return data, app_buf.peek(0, 256 * 1024)

    data, in_place = c.run(proc())
    assert data == blob
    assert in_place == blob  # server wrote directly into the app buffer


def test_nfs_write_stable_hits_disks_immediately():
    c = cluster(backend="raid", cache_bytes=64 << 20)
    nfs = c.mounts[0].nfs

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "stable")
        yield from nfs.write(fh, 0, bytes(128 * 1024), stable=True)

    c.run(proc())
    assert sum(d.bytes_written.value for d in c.raid.disks) >= 128 * 1024


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(transport="carrier-pigeon")
    with pytest.raises(ValueError):
        ClusterConfig(strategy="hope")
    with pytest.raises(ValueError):
        ClusterConfig(backend="punchcards")
    with pytest.raises(ValueError):
        ClusterConfig(nclients=0)


@pytest.mark.parametrize("transport", ["rdma-rw", "rdma-rr", "tcp-ipoib"])
def test_nfs_hard_links(transport):
    c = cluster(transport=transport)
    nfs = c.mounts[0].nfs

    def proc():
        fh, _ = yield from nfs.create(nfs.root, "original")
        yield from nfs.write(fh, 0, b"shared content")
        attrs = yield from nfs.link(fh, nfs.root, "alias")
        assert attrs.nlink == 2
        alias_fh, alias_attrs = yield from nfs.lookup(nfs.root, "alias")
        assert alias_attrs.fileid == attrs.fileid
        data, _, _ = yield from nfs.read(alias_fh, 0, 100)
        assert data == b"shared content"
        # Removing one name keeps the inode alive through the other.
        yield from nfs.remove(nfs.root, "original")
        data, _, _ = yield from nfs.read(alias_fh, 0, 100)
        assert data == b"shared content"
        after = yield from nfs.getattr(alias_fh)
        assert after.nlink == 1
        yield from nfs.remove(nfs.root, "alias")
        try:
            yield from nfs.getattr(alias_fh)
        except NfsError as exc:
            return exc.status
        return None

    assert c.run(proc()) is Nfs3Status.STALE


def test_nfs_mknod_special():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        fh, attrs = yield from nfs.mknod(nfs.root, "fifo0")
        return attrs

    attrs = c.run(proc())
    from repro.fs.api import FileKind

    assert attrs.kind is FileKind.SPECIAL


@pytest.mark.parametrize("transport", ["rdma-rw", "rdma-rr"])
def test_nfs_readdirplus_long_reply(transport):
    """READDIRPLUS's per-entry fattrs force the long-reply machinery."""
    c = cluster(transport=transport)
    nfs = c.mounts[0].nfs

    def proc():
        d, _ = yield from nfs.mkdir(nfs.root, "plus")
        for i in range(120):
            f, _ = yield from nfs.create(d, f"entry-{i:03d}")
            yield from nfs.write(f, 0, bytes(i))
        entries = yield from nfs.readdirplus(d)
        return entries

    entries = c.run(proc())
    assert len(entries) == 120
    name, fh, attrs = entries[5]
    assert name == "entry-005"
    assert attrs.size == 5
    assert fh.fileid == attrs.fileid


def test_nfs_fsinfo_reports_transport_limits():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        return (yield from nfs.fsinfo())

    info = c.run(proc())
    assert info.rtmax == c.config.profile.rpcrdma.max_transfer_bytes
    assert info.wtmax == info.rtmax


def test_nfs_pathconf():
    c = cluster()
    nfs = c.mounts[0].nfs

    def proc():
        return (yield from nfs.pathconf())

    conf = c.run(proc())
    assert conf.name_max == 255
    assert conf.no_trunc
