"""The repro.api facade: builders, synchronous mounts, typed errors."""

import pytest

import repro.api as api
from repro.api import (
    ClusterConfig,
    Deployment,
    MountHandle,
    NfsStatusError,
    PoolExhausted,
    ReproError,
    TransportError,
    connect,
)


# ---------------------------------------------------------------- builders
def test_builders_set_transport():
    assert ClusterConfig.rdma_rw().transport == "rdma-rw"
    assert ClusterConfig.rdma_rr().transport == "rdma-rr"
    assert ClusterConfig.tcp().transport == "tcp-ipoib"
    assert ClusterConfig.tcp(nic="gige").transport == "tcp-gige"


def test_tcp_builder_rejects_unknown_nic():
    with pytest.raises(ValueError):
        ClusterConfig.tcp(nic="myrinet")


def test_builders_pass_fields_through():
    cfg = ClusterConfig.rdma_rw(strategy="cache", nclients=4, srq=True)
    assert (cfg.strategy, cfg.nclients, cfg.srq) == ("cache", 4, True)


# ---------------------------------------------------------------- facade
def test_connect_round_trip():
    nfs = connect(ClusterConfig.rdma_rw()).mount()
    home, _ = nfs.mkdir(nfs.root, "home")
    fh, _ = nfs.create(home, "hello.dat")
    payload = b"hello, rdma world! " * 1000
    written, _ = nfs.write(fh, 0, payload)
    data, eof, _ = nfs.read(fh, 0, written)
    assert data == payload and eof
    assert [e.name for e in nfs.readdir(home)] == ["hello.dat"]


def test_connect_accepts_field_kwargs():
    dep = connect(transport="tcp-ipoib", nclients=2)
    assert dep.config.transport == "tcp-ipoib"
    assert len(dep.mounts) == 2
    assert isinstance(dep.mount(1), MountHandle)


def test_deployment_rejects_config_and_kwargs():
    with pytest.raises(ValueError):
        Deployment(ClusterConfig(), nclients=2)


def test_run_escape_hatch_for_generator_scripts():
    dep = connect(ClusterConfig.rdma_rw())
    nfs = dep.mount().nfs   # the generator-based client

    def script():
        fh, _ = yield from nfs.create(nfs.root, "multi.dat")
        yield from nfs.write(fh, 0, b"x" * 4096)
        data, _, _ = yield from nfs.read(fh, 0, 4096)
        return data

    assert dep.run(script()) == b"x" * 4096


def test_mount_handle_rejects_unknown_verbs():
    handle = connect(ClusterConfig.rdma_rw()).mount()
    with pytest.raises(AttributeError):
        handle.frobnicate
    assert "readdirplus" in dir(handle)


# ---------------------------------------------------------------- topology
def test_topology_kwargs_route_to_multicluster():
    from repro.api import MultiCluster

    dep = connect(transport="rdma-rw", strategy="dynamic",
                  nclients=6, servers=2, mux=True, srq=True)
    assert isinstance(dep.cluster, MultiCluster)
    assert dep.topology is not None and dep.topology.servers == 2
    assert dep.config.nclients == 6   # base knobs still visible


def test_plain_kwargs_stay_single_node():
    dep = connect(transport="rdma-rw", nclients=2)
    assert dep.topology is None
    assert dep.shard_of(0) == 0 and dep.shard_of(1) == 0


def test_sharded_mounts_round_trip_and_report_shards():
    from repro.api import TopologyConfig

    dep = connect(TopologyConfig(
        transport="rdma-rw", strategy="dynamic", nclients=4,
        servers=2, mux=True, srq=True))
    shards = {dep.shard_of(i) for i in range(4)}
    assert shards == {0, 1}   # redirector spread mounts across both
    for i in range(4):
        nfs = dep.mount(i)
        fh, _ = nfs.create(nfs.root, f"m{i}.dat")
        written, _ = nfs.write(fh, 0, bytes([i]) * 8192)
        data, eof, _ = nfs.read(fh, 0, written)
        assert data == bytes([i]) * 8192 and eof


def test_deployment_rejects_unknown_config_type():
    with pytest.raises(TypeError):
        Deployment(object())


# ---------------------------------------------------------------- errors
def test_nfs_errors_are_typed_and_carry_status():
    from repro.nfs.protocol import Nfs3Status

    nfs = connect(ClusterConfig.rdma_rw()).mount()
    with pytest.raises(NfsStatusError) as exc_info:
        nfs.lookup(nfs.root, "missing")
    err = exc_info.value
    assert err.status == Nfs3Status.NOENT
    assert isinstance(err, ReproError)


def test_transport_errors_are_repro_errors():
    from repro.ib.verbs import QPError
    from repro.rpc.transport import RpcTimeout

    assert issubclass(QPError, TransportError)
    assert issubclass(RpcTimeout, TransportError)
    assert issubclass(TransportError, ReproError)
    assert issubclass(PoolExhausted, ReproError)


# ---------------------------------------------------------------- __all__
def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None
    assert sorted(api.__all__) == list(api.__all__)
