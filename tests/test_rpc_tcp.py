"""Tests for TCP substrate and RPC-over-TCP end-to-end."""

import pytest

from repro.osmodel import CPU, CPUConfig, InterruptController
from repro.rpc import RpcCall, RpcReply, RpcServer, TcpRpcClient, TcpRpcServerTransport
from repro.rpc.msg import RpcCall as Call
from repro.sim import Simulator
from repro.tcpip import GIGE_PROFILE, IPOIB_PROFILE, TcpConnection, TcpEndpoint, TcpListener


def make_endpoints(profile=IPOIB_PROFILE, cores=2):
    sim = Simulator()
    eps = []
    for name in ("client", "server"):
        cpu = CPU(sim, CPUConfig(cores=cores), name=f"{name}.cpu")
        irq = InterruptController(sim, cpu, cost_us=4.0, name=f"{name}.irq")
        eps.append(TcpEndpoint(sim, cpu, irq, profile, name=name))
    return sim, eps[0], eps[1]


# ---------------------------------------------------------------- tcp
def test_tcp_message_delivery_roundtrip():
    sim, c, s = make_endpoints()
    conn = TcpConnection(c, s)
    got = []

    def client():
        yield from conn.send(c, b"request-bytes")
        reply = yield conn.recv(c)
        got.append(reply)

    def server():
        msg = yield conn.recv(s)
        assert msg == b"request-bytes"
        yield from conn.send(s, b"reply-bytes")

    sim.process(client())
    sim.process(server())
    sim.run()
    assert got == [b"reply-bytes"]


def test_tcp_charges_cpu_on_both_sides():
    sim, c, s = make_endpoints()
    conn = TcpConnection(c, s)

    def proc():
        yield from conn.send(c, bytes(256 * 1024))

    sim.run_until_complete(sim.process(proc()))
    assert c.cpu.busy_us_total > 100.0  # tx copies
    assert s.cpu.busy_us_total > 100.0  # rx copies + interrupts


def test_tcp_preserves_message_order():
    sim, c, s = make_endpoints()
    conn = TcpConnection(c, s)
    seen = []

    def client():
        for i in range(5):
            yield from conn.send(c, f"m{i}".encode())

    def server():
        for _ in range(5):
            seen.append((yield conn.recv(s)))

    sim.process(client())
    sim.process(server())
    sim.run()
    assert seen == [b"m0", b"m1", b"m2", b"m3", b"m4"]


def test_tcp_mixed_profiles_rejected():
    sim, c, s = make_endpoints(GIGE_PROFILE)
    other = TcpEndpoint(sim, c.cpu, c.irq, IPOIB_PROFILE, name="odd")
    with pytest.raises(ValueError):
        TcpConnection(c, other)


def test_tcp_closed_connection_rejects_send():
    sim, c, s = make_endpoints()
    conn = TcpConnection(c, s)
    conn.close()

    def proc():
        yield from conn.send(c, b"x")

    with pytest.raises(ConnectionError):
        sim.run_until_complete(sim.process(proc()))


def test_gige_throughput_near_line_rate():
    """A large transfer on GigE lands near the paper's ~107 MB/s."""
    sim, c, s = make_endpoints(GIGE_PROFILE, cores=2)
    conn = TcpConnection(c, s)
    size = 4 * 1024 * 1024

    def proc():
        yield from conn.send(c, bytes(size))

    sim.run_until_complete(sim.process(proc()))
    mb_s = size / sim.now  # bytes/us == MB/s
    assert 90.0 < mb_s < 125.0


def test_ipoib_faster_than_gige_but_below_wire():
    results = {}
    for profile in (GIGE_PROFILE, IPOIB_PROFILE):
        sim, c, s = make_endpoints(profile)
        conn = TcpConnection(c, s)
        size = 4 * 1024 * 1024

        def proc():
            yield from conn.send(c, bytes(size))

        sim.run_until_complete(sim.process(proc()))
        results[profile.name] = size / sim.now
    # IPoIB beats GigE (faster wire) but sits far below the IB line rate:
    # 2007-era IPoIB was host-cost-bound (copies, checksums, small MTU).
    assert results["ipoib"] > 1.5 * results["gige"]
    assert results["ipoib"] < 500.0


def test_listener_accept():
    sim, c, s = make_endpoints()
    listener = TcpListener(s)
    conn = listener.connect_from(c)
    got = []

    def server():
        accepted = yield listener.accept()
        got.append(accepted)

    sim.process(server())
    sim.run()
    assert got == [conn]


# ---------------------------------------------------------------- rpc messages
def test_rpc_call_encode_decode_roundtrip():
    call = Call(prog=100003, vers=3, proc=6, header=b"\x01\x02\x03\x04")
    decoded = Call.decode(call.encode())
    assert decoded.xid == call.xid
    assert (decoded.prog, decoded.vers, decoded.proc) == (100003, 3, 6)
    assert decoded.header[:4] == b"\x01\x02\x03\x04"


def test_rpc_reply_encode_decode_roundtrip():
    reply = RpcReply(xid=77, header=b"\xAA\xBB\xCC\xDD")
    decoded = RpcReply.decode(reply.encode())
    assert decoded.xid == 77
    assert decoded.header[:4] == b"\xAA\xBB\xCC\xDD"


def test_rpc_xids_unique():
    xids = {Call(prog=1, vers=1, proc=0).xid for _ in range(100)}
    assert len(xids) == 100


# ---------------------------------------------------------------- rpc over tcp
def echo_rig(profile=IPOIB_PROFILE):
    sim, c, s = make_endpoints(profile)
    conn = TcpConnection(c, s)
    client = TcpRpcClient(c, conn)
    server_transport = TcpRpcServerTransport(s, conn)
    rpc_server = RpcServer(sim, s.cpu, nthreads=4)

    def echo_handler(call):
        yield sim.timeout(5.0)  # pretend the FS did something
        return RpcReply(
            xid=call.xid,
            header=call.header,
            read_payload=call.write_payload,
        )

    rpc_server.register_program(100003, 3, echo_handler)
    server_transport.attach(rpc_server)
    return sim, client, rpc_server


def test_rpc_over_tcp_roundtrip():
    sim, client, _ = echo_rig()
    out = []

    def proc():
        reply = yield from client.call(
            RpcCall(prog=100003, vers=3, proc=7, header=b"ARGS", write_payload=b"DATA" * 100)
        )
        out.append(reply)

    sim.run_until_complete(sim.process(proc()))
    assert out[0].header[:4] == b"ARGS"
    assert out[0].read_payload == b"DATA" * 100


def test_rpc_over_tcp_concurrent_calls_demuxed_by_xid():
    sim, client, _ = echo_rig()
    results = {}

    def caller(tag):
        reply = yield from client.call(
            RpcCall(prog=100003, vers=3, proc=1, header=tag.encode().ljust(4))
        )
        results[tag] = reply.header[:4].strip()

    for tag in ("a", "b", "c", "d", "e", "f"):
        sim.process(caller(tag))
    sim.run()
    assert results == {t: t.encode() for t in ("a", "b", "c", "d", "e", "f")}


def test_rpc_unknown_program_returns_error_stat():
    sim, client, _ = echo_rig()
    out = []

    def proc():
        reply = yield from client.call(RpcCall(prog=999, vers=1, proc=0, header=b""))
        out.append(reply)

    sim.run_until_complete(sim.process(proc()))
    assert out[0].stat == 1


def test_rpc_server_thread_pool_limits_concurrency():
    sim, client, rpc_server = echo_rig()
    done_at = []

    def caller():
        yield from client.call(RpcCall(prog=100003, vers=3, proc=1, header=b"abcd"))
        done_at.append(sim.now)

    for _ in range(8):
        sim.process(caller())
    sim.run()
    assert len(done_at) == 8
    # 8 calls, 4 server threads, 5us handler -> at least two waves.
    assert max(done_at) - min(done_at) >= 5.0
