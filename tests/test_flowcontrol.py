"""Tests for credit flow control: manager, policies, end-to-end behavior."""

import pytest

from repro.core import AdaptiveCreditPolicy, StaticCreditPolicy
from repro.core.credits import CreditManager
from repro.core.readwrite import ReadWriteServer
from repro.experiments import Cluster, ClusterConfig
from repro.sim import Simulator


# ---------------------------------------------------------------- manager
def test_credit_manager_acquire_release_cycle():
    sim = Simulator()
    mgr = CreditManager(sim, initial_grant=2)

    def proc():
        yield from mgr.acquire()
        yield from mgr.acquire()
        assert mgr.available == 0
        mgr.release()
        assert mgr.available == 1

    sim.run_until_complete(sim.process(proc()))


def test_credit_manager_blocks_at_grant():
    sim = Simulator()
    mgr = CreditManager(sim, initial_grant=1)
    progress = []

    def first():
        yield from mgr.acquire()
        yield sim.timeout(10.0)
        mgr.release()

    def second():
        yield from mgr.acquire()
        progress.append(sim.now)
        mgr.release()

    sim.process(first())
    sim.process(second())
    sim.run()
    assert progress == [10.0]
    assert mgr.waits.events == 1


def test_credit_manager_grant_growth_releases_extra():
    sim = Simulator()
    mgr = CreditManager(sim, initial_grant=2)

    def proc():
        yield from mgr.acquire()
        mgr.release(new_grant=5)  # grant grew by 3: refund 1 + 3
        assert mgr.available == 5
        assert mgr.grant == 5

    sim.run_until_complete(sim.process(proc()))


def test_credit_manager_grant_shrink_withholds_refunds():
    sim = Simulator()
    mgr = CreditManager(sim, initial_grant=4)

    def proc():
        for _ in range(4):
            yield from mgr.acquire()
        mgr.release(new_grant=2)  # shrink by 2: 1 refund - 2 = deficit 1
        assert mgr.available == 0
        mgr.release()             # pays the deficit, no refund
        assert mgr.available == 0
        mgr.release()             # normal refund resumes
        assert mgr.available == 1

    sim.run_until_complete(sim.process(proc()))


def test_credit_manager_over_release_rejected():
    sim = Simulator()
    mgr = CreditManager(sim, initial_grant=1)
    with pytest.raises(RuntimeError):
        mgr.release()


def test_credit_manager_validation():
    with pytest.raises(ValueError):
        CreditManager(Simulator(), initial_grant=0)


# ---------------------------------------------------------------- policies
def test_static_policy_constant():
    policy = StaticCreditPolicy(16)
    policy.register_connection(1)
    assert policy.grant_for(1, backlog=0) == 16
    assert policy.grant_for(1, backlog=10_000) == 16
    with pytest.raises(ValueError):
        StaticCreditPolicy(0)


def test_adaptive_policy_fair_share():
    policy = AdaptiveCreditPolicy(total_credits=64, max_grant=64)
    for conn in range(4):
        policy.register_connection(conn)
    assert policy.grant_for(0, backlog=0) == 16  # 64 / 4


def test_adaptive_policy_shrinks_on_backlog():
    policy = AdaptiveCreditPolicy(total_credits=64, backlog_high=10)
    policy.register_connection(1)
    before = policy.grant_for(1, backlog=0)
    squeezed = policy.grant_for(1, backlog=100)
    assert squeezed < before
    assert policy.shrinks.events == 1
    assert policy.target == 32


def test_adaptive_policy_recovers_additively():
    policy = AdaptiveCreditPolicy(total_credits=64, backlog_high=10,
                                  backlog_low=2, recover_step=2)
    policy.register_connection(1)
    policy.grant_for(1, backlog=100)   # halve to 32
    for _ in range(16):
        policy.grant_for(1, backlog=0)
    assert policy.target == 64         # fully recovered
    assert policy.grows.events == 16


def test_adaptive_policy_floor():
    policy = AdaptiveCreditPolicy(total_credits=64, min_grant=2,
                                  backlog_high=2, backlog_low=1)
    policy.register_connection(1)
    for _ in range(20):
        grant = policy.grant_for(1, backlog=50)
    assert grant >= 2


def test_adaptive_policy_validation():
    with pytest.raises(ValueError):
        AdaptiveCreditPolicy(min_grant=0)
    with pytest.raises(ValueError):
        AdaptiveCreditPolicy(backlog_low=32, backlog_high=32)


def test_adaptive_policy_unregister_redistributes():
    policy = AdaptiveCreditPolicy(total_credits=60, max_grant=64)
    for conn in (1, 2, 3):
        policy.register_connection(conn)
    assert policy.grant_for(1, backlog=0) == 20
    policy.unregister_connection(3)
    assert policy.grant_for(1, backlog=0) >= 30


# ---------------------------------------------------------------- end to end
def test_reply_grant_reaches_client_manager():
    """A server policy's grant is applied by the client on each reply."""
    cluster = Cluster(ClusterConfig(transport="rdma-rw"))
    server = cluster.server_transports[0]
    server.credit_policy = AdaptiveCreditPolicy(
        total_credits=8, min_grant=2, max_grant=8, backlog_high=4, backlog_low=1,
    )
    server.credit_policy.register_connection(server.qp.qp_num)
    nfs = cluster.mounts[0].nfs

    def traffic():
        fh, _ = yield from nfs.create(nfs.root, "f")
        for i in range(6):
            yield from nfs.write(fh, i * 4096, b"x" * 4096)

    cluster.run(traffic())
    client = cluster.mounts[0].transport
    # The client's grant now reflects the policy, not the static config.
    assert client.credits.grant <= 8


def test_disconnect_reclaims_withheld_buffers():
    """§4.1 mitigation: dropping the connection frees pinned windows."""
    from tests.test_security import make_rr_cluster_with_withholder

    c, nfs, withholder, server = make_rr_cluster_with_withholder()

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "pinned")
        yield from nfs.write(fh, 0, bytes(512 * 1024))
        for i in range(4):
            yield from nfs.read(fh, i * 128 * 1024, 128 * 1024)

    c.run(attack())
    assert server.pending_done_count == 4
    c.run(server.disconnect())
    assert server.pending_done_count == 0
    assert c.server_node.hca.tpt.remotely_exposed() == []
