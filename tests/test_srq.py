"""Shared receive pool (SRQ): invariants, exhaustion, chaos, scaling."""

import pytest

from repro.errors import PoolExhausted
from repro.experiments import Cluster, ClusterConfig
from repro.experiments.cluster import default_srq_entries
from repro.ib import Fabric, SharedReceivePool
from repro.sim import Simulator
from repro.workloads import IozoneParams, run_iozone


def srq_cluster(**kwargs):
    kwargs.setdefault("transport", "rdma-rw")
    kwargs.setdefault("srq", True)
    return Cluster(ClusterConfig(**kwargs))


def small_iozone(**kwargs):
    kwargs.setdefault("nthreads", 1)
    kwargs.setdefault("record_bytes", 64 * 1024)
    kwargs.setdefault("ops_per_thread", 4)
    return IozoneParams(**kwargs)


# ---------------------------------------------------------------- config
def test_srq_requires_rdma_transport():
    with pytest.raises(ValueError):
        ClusterConfig(transport="tcp-ipoib", srq=True)


def test_srq_entries_must_cover_clients():
    with pytest.raises(ValueError):
        ClusterConfig(transport="rdma-rw", srq=True, nclients=8, srq_entries=4)


def test_default_srq_entries_sublinear():
    assert default_srq_entries(1) == 64
    # Grows, but far slower than the client count once past the floor.
    assert default_srq_entries(256) < 256 * 32
    assert default_srq_entries(256) >= 256
    for n in (4, 16, 64, 256):
        assert default_srq_entries(4 * n) <= 4 * default_srq_entries(n)


# ---------------------------------------------------------------- invariants
def test_pool_quiesces_full_after_workload():
    """Every buffer taken during a run is recycled: no leaks."""
    c = srq_cluster(nclients=4)
    run_iozone(c, small_iozone())
    c.sim.run(until=c.sim.now + 100_000.0)
    assert c.srq.takes.events > 0
    assert c.srq.recycles.events == c.srq.takes.events
    assert c.srq.available == c.srq.entries
    assert c.srq.exhaustions.events == 0


def test_credit_grants_never_exceed_pool():
    """RNR avoidance: the sum of client grants fits in the pool."""
    for transport, demand in (("rdma-rw", 1), ("rdma-rr", 2)):
        c = srq_cluster(transport=transport, nclients=16)
        total_grantable = c.rpcrdma.credits * demand * c.config.nclients
        assert total_grantable <= c.srq.entries
        run_iozone(c, small_iozone(ops_per_thread=2))
        assert c.srq.exhaustions.events == 0
        hca = c.server_node.hca
        assert hca.rnr_events.events == 0


def test_no_leak_after_qp_kill_and_redial():
    """Chaos invariant: a killed connection's claimed buffers come back."""
    c = srq_cluster(nclients=2)
    nfs = c.mounts[0].nfs
    done = []

    def victim():
        fh, _ = yield from nfs.create(nfs.root, "survivor")
        yield from nfs.write(fh, 0, bytes(range(256)) * 1024)
        data, _, _ = yield from nfs.read(fh, 0, 256 * 1024)
        done.append(len(data))

    def killer():
        yield c.sim.timeout(50.0)  # mid-flight
        qp = c.mounts[0].transport.qp
        qp.enter_error("injected fault")
        qp.peer.enter_error("injected fault (remote)")

    c.sim.process(victim())
    c.sim.process(killer())
    c.sim.run(until=c.sim.now + 10_000_000.0)
    assert done == [256 * 1024]
    c.sim.run(until=c.sim.now + 100_000.0)
    # All buffers posted again, whether recycled in-band or reclaimed
    # when the dead QP detached.
    assert c.srq.available == c.srq.entries


def test_exhaustion_returns_none_and_recovers():
    """An empty pool refuses the receive (RNR path) until a recycle."""
    sim = Simulator()
    fabric = Fabric(sim, seed=7)
    node = fabric.add_node("server")
    peer = fabric.add_node("client")
    qp, _ = fabric.connect(node, peer)
    pool = SharedReceivePool(node, entries=2, buffer_bytes=1024)
    sim.run_until_complete(sim.process(pool.setup()))
    pool.attach(qp)

    first = pool.take(qp)
    second = pool.take(qp)
    assert first is not None and second is not None
    assert pool.take(qp) is None
    assert pool.exhaustions.events == 1
    assert pool.min_available == 0

    pool.recycle(first)
    assert pool.available == 1
    assert pool.take(qp) is not None


def test_detach_reclaims_outstanding_buffers():
    sim = Simulator()
    fabric = Fabric(sim, seed=7)
    node = fabric.add_node("server")
    peer = fabric.add_node("client")
    qp, _ = fabric.connect(node, peer)
    pool = SharedReceivePool(node, entries=4, buffer_bytes=1024)
    sim.run_until_complete(sim.process(pool.setup()))
    inbox = pool.attach(qp)
    wr = pool.take(qp)
    assert wr is not None and pool.available == 3
    # Deliveries sitting in the inbox at detach time go back to the pool.
    inbox.put(wr)
    pool.detach(qp)
    assert pool.available == 4
    assert pool.reclaimed_on_detach.events == 1


# ---------------------------------------------------------------- scaling
def test_registered_bytes_sublinear_vs_per_connection():
    """The Fig 11 claim, measured directly: SRQ memory grows sublinearly
    while per-connection rings grow linearly with the client count."""
    def recv_bytes(nclients, srq):
        c = Cluster(ClusterConfig(transport="rdma-rw", nclients=nclients,
                                  srq=srq))
        nfs = c.mounts[0].nfs
        c.run(nfs.getattr(nfs.root))   # step the sim so pools post
        return c.server_recv_buffer_bytes()

    conn16, conn64 = recv_bytes(16, False), recv_bytes(64, False)
    srq16, srq64 = recv_bytes(16, True), recv_bytes(64, True)
    assert conn64 == 4 * conn16                 # linear in clients
    assert srq64 / srq16 < 4                    # sublinear
    assert srq64 < conn64                       # and absolutely smaller


# ---------------------------------------------------------------- dispatcher
def test_bounded_run_queue_raises_on_direct_overflow():
    from repro.osmodel import KernelThreadPool

    sim = Simulator()

    def handler(worker, task):
        yield sim.timeout(1000.0)

    pool = KernelThreadPool(sim, nthreads=1, handler=handler, max_queue=1)
    pool.submit("a")
    with pytest.raises(PoolExhausted):
        pool.submit("b")


def test_reserve_slot_blocks_until_dequeue():
    from repro.osmodel import KernelThreadPool

    sim = Simulator()

    def handler(worker, task):
        yield sim.timeout(10.0)

    pool = KernelThreadPool(sim, nthreads=1, handler=handler, max_queue=1)
    order = []

    def submitter(tag):
        yield from pool.reserve_slot()
        pool.submit(tag, reserved=True)
        order.append((tag, sim.now))

    sim.process(submitter("first"))
    sim.process(submitter("second"))
    sim.run()
    # The second submitter found the queue full and waited for a slot
    # (freed when the worker dequeued the first task — same timestamp,
    # later engine step, since dequeueing itself costs no time).
    assert [tag for tag, _ in order] == ["first", "second"]
    assert pool.queue_waits.events == 1
    assert pool.completed.events == 2


def test_bounded_cluster_serves_more_clients_than_slots():
    """64 client threads against an 8-deep queue: everything completes,
    the queue fills, and nothing deadlocks."""
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=8,
                              server_workers=2, server_queue_depth=8))
    r = run_iozone(c, small_iozone(nthreads=8, ops_per_thread=2))
    assert r.read_mb_s > 0
    assert c.rpc_server.pool.backlog_peak <= 8
    assert c.rpc_server.pool.backlog == 0
