"""Compiled/fallback split: both cores must produce bit-identical tables.

Each leg runs a quick golden grid in a subprocess with REPRO_SIM_CORE
forced, so core selection (an import-time decision) is exercised for
real.  The compiled leg is skipped when no C toolchain can build the
extension; the pure-python leg always runs.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Figures chosen for coverage-per-second: fig5 exercises the RDMA
# read/write data plane, fig11 the SRQ/credit scaling path.  The rest
# of the grid is covered by the golden tests plus `repro check`.
GRID_SNIPPET = """
from repro.sim.engine import ACTIVE_CORE
from repro.experiments import figures
assert ACTIVE_CORE == {core!r}, f"wanted {core} core, got {{ACTIVE_CORE}}"
print(figures.run_fig5(scale="quick"))
print(figures.run_fig11(scale="quick"))
"""


def _cengine_available() -> bool:
    try:
        from repro.sim._build import load_cengine

        return load_cengine() is not None
    except ImportError:
        return False


def _run_grid(core: str) -> str:
    env = dict(os.environ, REPRO_SIM_CORE=core,
               PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", GRID_SNIPPET.format(core=core)],
        capture_output=True, text=True, timeout=600, env=env)
    assert proc.returncode == 0, f"{core} core grid failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_python_core_runs_grid():
    out = _run_grid("python")
    assert "fig5" in out.lower() or out.strip(), "grid produced no output"


@pytest.mark.skipif(not _cengine_available(),
                    reason="compiled sim core unavailable (no C toolchain?)")
def test_compiled_core_bit_identical_to_python():
    py_out = _run_grid("python")
    c_out = _run_grid("c")
    assert c_out == py_out, (
        "compiled core diverged from pure-python core on the quick grid")


@pytest.mark.skipif(not _cengine_available(),
                    reason="compiled sim core unavailable (no C toolchain?)")
def test_compiled_resources_selected_with_c_core():
    """Under the C core the resource layer swaps to the compiled classes."""
    env = dict(os.environ, REPRO_SIM_CORE="c",
               PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""))
    snippet = (
        "from repro.sim import resources\n"
        "for cls in (resources.Resource, resources.Request, resources.Store):\n"
        "    assert cls.__module__ == 'repro.sim._cengine', cls\n"
        "assert resources.PurePythonResource.__module__ == 'repro.sim.resources'\n"
        "print('ok')\n")
    proc = subprocess.run([sys.executable, "-c", snippet],
                          capture_output=True, text=True, timeout=120, env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip() == "ok"
