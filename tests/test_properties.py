"""Property-based tests (hypothesis) for core invariants.

DESIGN.md §5 invariants: segment algebra, page-cache capacity, LRU
equivalence to a reference model, data integrity across random NFS
operation sequences, and chunk-pairing conservation.
"""

from collections import OrderedDict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.base import TransportError, pair_transfers, slice_segments
from repro.fs import PageCache, TmpFs
from repro.ib.verbs import Segment
from repro.osmodel import CPU, CPUConfig
from repro.sim import Simulator


# ---------------------------------------------------------------- segments
def seg_lists(max_segs=6, max_len=1 << 16):
    return st.lists(
        st.integers(1, max_len), min_size=1, max_size=max_segs
    ).map(lambda lens: _to_segments(lens))


def _to_segments(lengths):
    addr = 0x1000
    out = []
    for i, length in enumerate(lengths):
        out.append(Segment(0x100 + i, addr, length))
        addr += length + 0x10000
    return out


@given(seg_lists(), st.data())
def test_slice_segments_preserves_length_and_order(segments, data):
    total = sum(s.length for s in segments)
    offset = data.draw(st.integers(0, total))
    length = data.draw(st.integers(0, total - offset))
    sliced = slice_segments(segments, offset, length)
    assert sum(s.length for s in sliced) == length
    # Slices come from the original segments, in order, within bounds.
    src_iter = iter(segments)
    for piece in sliced:
        for src in src_iter:
            if src.stag == piece.stag:
                assert src.addr <= piece.addr
                assert piece.addr + piece.length <= src.addr + src.length
                break
        else:
            raise AssertionError("slice referenced an unknown segment")


@given(seg_lists())
def test_slice_segments_overrun_rejected(segments):
    total = sum(s.length for s in segments)
    with pytest.raises(TransportError):
        slice_segments(segments, 0, total + 1)


@given(seg_lists(), seg_lists(), st.data())
def test_pair_transfers_conserves_bytes(src, dst, data):
    length = data.draw(st.integers(0, min(sum(s.length for s in src),
                                          sum(d.length for d in dst))))
    ops = pair_transfers(src, dst, length)
    # Destination coverage equals the source coverage equals length.
    assert sum(op_dst.length for _, op_dst in ops) == length
    assert sum(sum(s.length for s in op_src) for op_src, _ in ops) == length
    # Each op writes exactly one destination segment window.
    for op_src, op_dst in ops:
        assert sum(s.length for s in op_src) == op_dst.length


@given(seg_lists(max_segs=3))
def test_pair_transfers_dst_too_small_rejected(dst):
    capacity = sum(d.length for d in dst)
    src = [Segment(1, 0, capacity + 1)]
    with pytest.raises(TransportError):
        pair_transfers(src, dst, capacity + 1)


# ---------------------------------------------------------------- page cache
class ReferenceLru:
    """Dict-based oracle for the page cache."""

    def __init__(self, max_pages):
        self.max_pages = max_pages
        self.entries = OrderedDict()

    def touch(self, key):
        if key in self.entries:
            self.entries.move_to_end(key)
            return True
        return False

    def insert(self, key, dirty):
        if key in self.entries:
            self.entries.move_to_end(key)
            self.entries[key] = self.entries[key] or dirty
            return []
        evicted = []
        while len(self.entries) >= self.max_pages:
            evicted.append(self.entries.popitem(last=False))
        self.entries[key] = dirty
        return evicted


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(
    st.tuples(st.sampled_from(["touch", "insert", "insert_dirty", "clean"]),
              st.integers(0, 3), st.integers(0, 15)),
    max_size=200,
))
def test_pagecache_matches_reference_lru(ops):
    page = 64 * 1024
    cache = PageCache(capacity_bytes=6 * page, page_bytes=page)
    oracle = ReferenceLru(max_pages=6)
    for op, fid, pg in ops:
        key = (fid, pg)
        if op == "touch":
            assert cache.touch(key) == oracle.touch(key)
        elif op == "clean":
            cache.mark_clean(key)
            if key in oracle.entries:
                oracle.entries[key] = False
        else:
            dirty = op == "insert_dirty"
            got = cache.insert(key, dirty=dirty)
            want = oracle.insert(key, dirty)
            assert got == want
        assert cache.resident_pages == len(oracle.entries)
        assert cache.resident_bytes <= cache.capacity_bytes
        assert set(cache.dirty_pages()) == {
            k for k, d in oracle.entries.items() if d
        }


# ---------------------------------------------------------------- file system
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "truncate"]),
        st.integers(0, 3),               # file index
        st.integers(0, 200_000),         # offset
        st.integers(0, 64 * 1024),       # length
        st.integers(0, 255),             # fill byte
    ),
    max_size=30,
))
def test_tmpfs_matches_bytearray_model(ops):
    sim = Simulator()
    fs = TmpFs(sim, CPU(sim, CPUConfig(cores=2)))
    model: dict[int, bytearray] = {}
    fids: dict[int, int] = {}

    def driver():
        for op, fidx, offset, length, fill in ops:
            if fidx not in fids:
                fids[fidx] = yield from fs.create(fs.root_id, f"f{fidx}")
                model[fidx] = bytearray()
            fid = fids[fidx]
            ref = model[fidx]
            if op == "write":
                data = bytes([fill]) * length
                yield from fs.write(fid, offset, data)
                if offset + length > len(ref):
                    ref.extend(b"\x00" * (offset + length - len(ref)))
                ref[offset : offset + length] = data
            elif op == "read":
                data, eof = yield from fs.read(fid, offset, length)
                expect = bytes(ref[offset : offset + length])
                assert data == expect
                assert eof == (offset + length >= len(ref))
            else:  # truncate
                size = min(offset, 300_000)
                yield from fs.setattr(fid, size=size)
                if size < len(ref):
                    del ref[size:]
                else:
                    ref.extend(b"\x00" * (size - len(ref)))
            attrs = yield from fs.getattr(fid)
            assert attrs.size == len(ref)

    sim.run_until_complete(sim.process(driver()))


# ---------------------------------------------------------------- transport
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(
    st.sampled_from(["rdma-rw", "rdma-rr"]),
    st.lists(st.integers(1, 300_000), min_size=1, max_size=4),
    st.randoms(use_true_random=False),
)
def test_transport_roundtrip_random_sizes(design, sizes, rnd):
    """Any sequence of write/read sizes round-trips bytes exactly."""
    from repro.experiments import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(transport=design))
    nfs = cluster.mounts[0].nfs

    def driver():
        fh, _ = yield from nfs.create(nfs.root, "prop")
        offset = 0
        spans = []
        for size in sizes:
            payload = bytes(rnd.getrandbits(8) for _ in range(min(size, 4096)))
            payload = (payload * (size // len(payload) + 1))[:size] if payload else b""
            yield from nfs.write(fh, offset, payload)
            spans.append((offset, payload))
            offset += size
        for off, payload in spans:
            data, _, _ = yield from nfs.read(fh, off, len(payload))
            assert data == payload

    cluster.run(driver())
