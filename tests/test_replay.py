"""Trace-driven replay tests: recording, compaction, determinism, CLI.

Covers the PR's acceptance criteria:

* a traced run records into a compact :class:`OpTrace` whose mix and
  size/offset distributions reflect the source workload;
* the JSON form round-trips losslessly and rejects foreign formats;
* distribution compaction is deterministic and bounded;
* the same trace replayed twice produces bit-identical result tables,
  and unknown verbs are dropped (reported, not crashed on);
* ``python -m repro stats --json`` emits the machine-readable nfsstat
  dump and round-trips through ``json.loads`` (satellite of the health
  JSON sink, which embeds the same ``stats_dict``).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import Cluster, ClusterConfig
from repro.workloads import (
    OltpParams,
    OpTrace,
    ReplayParams,
    record_trace,
    run_oltp,
    run_replay,
)
from repro.workloads.replay import MAX_DIST_POINTS, _compress, _draw


def traced_cluster(**kwargs):
    kwargs.setdefault("telemetry", True)
    kwargs.setdefault("transport", "rdma-rw")
    kwargs.setdefault("seed", 2007)
    return Cluster(ClusterConfig(**kwargs))


def small_oltp_trace():
    c = traced_cluster(nclients=1)
    run_oltp(c, OltpParams(readers=4, writers=2, ops_per_thread=5,
                           datafile_bytes=2 << 20))
    return record_trace(c.telemetry.tracer, source="oltp test")


# --------------------------------------------------------------- recording
def test_record_trace_mix_and_dists():
    trace = small_oltp_trace()
    # The OLTP personality is reads + writes + the two setup CREATEs.
    assert trace.mix["READ"] == 20
    assert trace.mix["WRITE"] >= 15
    assert trace.mix["CREATE"] == 2
    assert trace.ops_total == sum(trace.mix.values())
    # READ/WRITE carry offset and count distributions from span args.
    for verb in ("READ", "WRITE"):
        dists = trace.dists[verb]
        assert sum(c for _, c in dists["count"]) == trace.mix[verb]
        assert all(v >= 0 for v, _ in dists["offset"])
    # Metadata verbs carry no distributions.
    assert "CREATE" not in trace.dists


def test_record_trace_empty_tracer():
    c = traced_cluster(nclients=1)
    trace = record_trace(c.telemetry.tracer)
    assert trace.ops_total == 0
    assert trace.mix == {}


# ------------------------------------------------------------- persistence
def test_optrace_json_roundtrip(tmp_path):
    trace = small_oltp_trace()
    path = tmp_path / "trace.json"
    trace.save(str(path))
    loaded = OpTrace.load(str(path))
    assert loaded.mix == trace.mix
    assert loaded.dists == trace.dists
    assert loaded.to_json() == trace.to_json()
    # The compact form stays compact regardless of source run length.
    assert path.stat().st_size < 8192


def test_optrace_rejects_foreign_format():
    with pytest.raises(ValueError, match="not a repro-optrace"):
        OpTrace.from_json(json.dumps({"format": "something-else"}))


# --------------------------------------------------------------- compaction
def test_compress_exact_when_small():
    assert _compress([4096, 4096, 8192]) == [[4096, 2], [8192, 1]]


def test_compress_quantizes_long_tails():
    values = list(range(0, 100 * 4096, 4096))     # 100 distinct values
    out = _compress(values)
    assert len(out) == MAX_DIST_POINTS
    assert sum(c for _, c in out) == len(values)  # mass preserved
    assert out == _compress(values)               # deterministic
    assert [v for v, _ in out] == sorted(v for v, _ in out)


def test_draw_is_weighted_and_deterministic():
    from repro.sim import DeterministicRNG

    dist = [[10, 1], [20, 999]]
    rng = DeterministicRNG(7, "draw-test")
    draws = [_draw(rng, dist) for _ in range(50)]
    assert draws.count(20) > 40
    rng2 = DeterministicRNG(7, "draw-test")
    assert draws == [_draw(rng2, dist) for _ in range(50)]


# ------------------------------------------------------------------ replay
def test_replay_deterministic_tables():
    trace = small_oltp_trace()

    def once():
        c = Cluster(ClusterConfig(transport="rdma-rw", nclients=2,
                                  seed=2007))
        return run_replay(c, trace,
                          ReplayParams(ops_per_thread=15, nthreads=2,
                                       seed=11)).as_dict()

    first, second = once(), once()
    assert first == second                       # bit-identical tables
    assert first["ops_total"] == 30
    assert set(first["verb_counts"]) <= {"READ", "WRITE", "CREATE"}
    assert first["latency_us"]["count"] == 30


def test_replay_defaults_to_trace_length():
    trace = small_oltp_trace()
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=1, seed=2007))
    result = run_replay(c, trace, ReplayParams(nthreads=2, seed=3))
    # None ops_per_thread → the trace's own op count split over threads.
    assert result.ops_total == 2 * max(1, trace.ops_total // 2)


def test_replay_skips_unknown_verbs():
    trace = OpTrace(mix={"READ": 5, "FNORD": 3},
                    dists={"READ": {"offset": [[0, 5]],
                                    "count": [[4096, 5]]}},
                    ops_total=8)
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=1, seed=2007))
    result = run_replay(c, trace, ReplayParams(ops_per_thread=5))
    assert result.skipped_verbs == {"FNORD": 3}
    assert result.verb_counts == {"READ": 5}


def test_replay_rejects_empty_trace():
    c = Cluster(ClusterConfig(transport="rdma-rw", nclients=1, seed=2007))
    with pytest.raises(ValueError, match="no replayable"):
        run_replay(c, OpTrace(), ReplayParams())


def test_replay_runs_on_tcp_transport():
    # A recorded trace is a portable scenario: same trace, other stack.
    trace = small_oltp_trace()
    c = Cluster(ClusterConfig(transport="tcp-ipoib", nclients=1, seed=2007))
    result = run_replay(c, trace, ReplayParams(ops_per_thread=10, seed=5))
    assert result.ops_total == 10
    assert result.bytes_read + result.bytes_written > 0


# ------------------------------------------------------------- stats --json
def test_cli_stats_json_roundtrip(capsys):
    from repro.__main__ import main

    assert main(["stats", "--figure", "fig5", "--quick", "--point", "0",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)   # valid JSON end to end
    assert payload["figure"] == "fig5"
    assert payload["label"]
    read = payload["verbs"]["READ"]
    assert read["client_ops"] == read["server_ops"] > 0
    assert read["latency_us"]["p50"] <= read["latency_us"]["p99"]
    names = {s["name"] for s in payload["samples"]}
    assert {"rpc_calls_sent", "hca_qps", "nfs_client_ops"} <= names
    # Lossless round trip.
    assert json.loads(json.dumps(payload)) == payload


def test_cli_stats_text_unchanged(capsys):
    from repro.__main__ import main

    assert main(["stats", "--figure", "fig5", "--quick", "--point", "0"]) == 0
    out = capsys.readouterr().out
    assert "NFS per-verb operations:" in out
    assert "credit waits" in out
    assert "low-watermark" not in out    # fig5 point 0 has no SRQ
