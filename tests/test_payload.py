"""Payload algebra: the zero-copy laws the data plane depends on.

Every law is checked against the materialised-bytes oracle: whatever a
``Payload`` operation claims, ``tobytes()`` of the result must equal the
same operation on real bytes.
"""

import pytest

from repro.payload import Payload, as_payload, join_parts


PATTERN = bytes(range(1, 32))


def test_zeros_reads_as_zero_bytes():
    p = Payload.zeros(1000)
    assert len(p) == 1000
    assert p.tobytes() == bytes(1000)
    assert p.is_zeros()
    assert p.resident_bytes == 0


def test_tile_matches_repeated_pattern():
    p = Payload.tile(PATTERN, 100)
    want = (PATTERN * 5)[:100]
    assert p.tobytes() == want
    assert p.resident_bytes == 0
    assert not p.is_zeros()


def test_tile_offset_rotates_pattern():
    p = Payload.tile(PATTERN, 40, offset=7)
    blob = PATTERN * 3
    assert p.tobytes() == blob[7:47]


def test_wrap_real_bytes_round_trip():
    p = Payload.wrap(b"hello world")
    assert p.tobytes() == b"hello world"
    assert p.resident_bytes == 11


def test_slice_law_matches_bytes_slicing():
    p = Payload.concat([Payload.tile(PATTERN, 50), b"MIDDLE", Payload.zeros(20)])
    blob = p.tobytes()
    for start, stop in [(0, 76), (0, 10), (45, 60), (50, 56), (56, 76),
                        (10, 10), (75, 76), (3, 71)]:
        assert p[start:stop].tobytes() == blob[start:stop], (start, stop)


def test_negative_and_open_slices():
    p = Payload.tile(PATTERN, 64)
    blob = p.tobytes()
    assert p[:16].tobytes() == blob[:16]
    assert p[16:].tobytes() == blob[16:]
    assert p[-8:].tobytes() == blob[-8:]
    assert p[:-8].tobytes() == blob[:-8]


def test_int_indexing():
    p = Payload.concat([b"ab", Payload.zeros(2), Payload.tile(b"xy", 4)])
    blob = p.tobytes()
    for i in range(len(p)):
        assert p[i] == blob[i]


def test_concat_law_matches_byte_concat():
    parts = [b"head", Payload.zeros(10), Payload.tile(PATTERN, 33), b"tail"]
    p = Payload.concat(parts)
    want = b"".join(bytes(x) if isinstance(x, Payload) else x for x in parts)
    assert len(p) == len(want)
    assert p.tobytes() == want


def test_add_operator():
    p = Payload.tile(PATTERN, 10) + b"xyz"
    q = b"abc" + Payload.zeros(4)
    assert p.tobytes() == (PATTERN * 1)[:10] + b"xyz"
    assert q.tobytes() == b"abc" + bytes(4)


def test_adjacent_tile_runs_merge():
    a = Payload.tile(PATTERN, 31)     # exactly one pattern period
    b = Payload.tile(PATTERN, 62)
    joined = Payload.concat([a, b])
    assert joined.nruns == 1
    assert joined.tobytes() == (PATTERN * 3)


def test_slice_of_slice_composes():
    p = Payload.tile(PATTERN, 500)
    blob = p.tobytes()
    q = p[100:400]
    r = q[50:200]
    assert r.tobytes() == blob[150:300]


def test_equality_against_bytes_and_payloads():
    a = Payload.tile(PATTERN, 40)
    b = Payload.wrap((PATTERN * 2)[:40])
    assert a == b
    assert a == (PATTERN * 2)[:40]
    assert a != Payload.zeros(40)
    assert a != (PATTERN * 2)[:39]


def test_resident_bytes_counts_only_real_runs():
    p = Payload.concat([b"1234", Payload.zeros(1 << 20), b"56"])
    assert len(p) == 6 + (1 << 20)
    assert p.resident_bytes == 6


def test_as_payload_and_join_parts():
    assert as_payload(b"abc").tobytes() == b"abc"
    assert join_parts([b"a", b"b"]) == b"ab"        # all-real stays bytes
    mixed = join_parts([b"a", Payload.zeros(3)])
    assert isinstance(mixed, Payload)
    assert mixed.tobytes() == b"a\x00\x00\x00"
    assert join_parts([]) == b""


def test_large_virtual_payload_is_cheap():
    # A 1 GiB descriptor must not materialise a gigabyte anywhere.
    p = Payload.tile(PATTERN, 1 << 30)
    assert len(p) == 1 << 30
    assert p.resident_bytes == 0
    assert p[123_456_789] == (PATTERN * 4)[123_456_789 % len(PATTERN)]
    window = p[500_000_000:500_000_064]
    assert len(window.tobytes()) == 64


def test_out_of_range_index_raises():
    p = Payload.zeros(4)
    with pytest.raises(IndexError):
        p[4]


def test_key_interns_identical_descriptors():
    a = Payload.tile(PATTERN, 64)
    b = Payload.tile(PATTERN, 64)
    assert a.key() == b.key()
    assert a.key() != Payload.tile(PATTERN, 65).key()
