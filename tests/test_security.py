"""Security tests: the §4.1 attacks against both transport designs."""

import pytest

from repro.core.readread import ReadReadServer
from repro.experiments import Cluster, ClusterConfig
from repro.rpc import RpcServer
from repro.security import (
    DoneWithholdingClient,
    OutOfBoundsProbe,
    StagGuessingAdversary,
    audit_server_exposure,
    probe_primitive_properties,
    stag_guess_success_probability,
)
from repro.workloads import IozoneParams, run_iozone


# ---------------------------------------------------------------- table 1
def test_table1_channel_vs_memory_properties():
    rows = {p.primitive: p for p in probe_primitive_properties()}
    channel, memory = rows["channel"], rows["memory"]
    # Channel primitives: nothing exposed, pre-posting required, no
    # steering tag, no rendezvous.
    assert not channel.receive_buffer_exposed
    assert channel.receive_buffer_pre_posted
    assert not channel.steering_tag
    assert not channel.rendezvous
    # Memory primitives: buffer exposed under a steering tag after a
    # rendezvous; no pre-posted receive involved.
    assert memory.receive_buffer_exposed
    assert not memory.receive_buffer_pre_posted
    assert memory.steering_tag
    assert memory.rendezvous


# ---------------------------------------------------------------- guessing
def _adversary_cluster(transport):
    c = Cluster(ClusterConfig(transport=transport))
    mount = c.mounts[0]

    def qp_factory():
        qc, qs = c.fabric.connect(mount.node, c.server_node)
        return qc

    return c, mount, StagGuessingAdversary(mount.node, qp_factory, seed=9)


def test_stag_guessing_fails_against_rw_server():
    c, mount, adversary = _adversary_cluster("rdma-rw")

    def traffic():
        nfs = mount.nfs
        fh, _ = yield from nfs.create(nfs.root, "victim")
        yield from nfs.write(fh, 0, bytes(256 * 1024))
        data, _, _ = yield from nfs.read(fh, 0, 256 * 1024)

    c.run(traffic())
    c.run(adversary.run(guesses=50))
    assert adversary.successes.events == 0
    assert adversary.hit_rate == 0.0
    # Every probe drew a protection fault at the server TPT.
    assert c.server_node.hca.tpt.protection_faults.events >= 50


def test_stag_guessing_window_exists_against_rr_server():
    """Against Read-Read, exposed stags are real: an adversary fed the
    exposed-stag list (the 'partial knowledge' worst case) succeeds."""
    c, mount, adversary = _adversary_cluster("rdma-rr")
    server_transport = c.server_transports[0]
    nfs = mount.nfs

    # Use a withheld-DONE situation to keep a window exposed during the
    # attack (otherwise exposure is transient).
    def traffic():
        fh, _ = yield from nfs.create(nfs.root, "victim")
        yield from nfs.write(fh, 0, bytes(256 * 1024))
        data, _, _ = yield from nfs.read(fh, 0, 256 * 1024)

    c.run(traffic())
    # Exposure happened: the server handed out real stags.
    assert len(c.server_node.hca.tpt.stags_exposed_ever) >= 1
    # Uniform guessing is still astronomically unlikely...
    p = stag_guess_success_probability(
        len(c.server_node.hca.tpt.stags_exposed_ever)
    )
    assert 0 < p < 1e-8
    # ...but unlike the Read-Write design, the probability is nonzero,
    # and targeted guesses against live windows succeed outright.


def test_targeted_guess_hits_live_rr_exposure():
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = c.mounts[0]
    nfs = mount.nfs
    server_transport = c.server_transports[0]

    # Replace the client with one that withholds DONE: windows stay open.
    withholder = DoneWithholdingClient(
        mount.node, mount.transport.qp, c.config.profile.rpcrdma,
        mount.transport.strategy,
    )
    # Reuse the existing connection's machinery by swapping the NFS
    # client's transport? Simpler: drive raw traffic with the original
    # transport but suppress DONEs via monkeypatching is invasive —
    # instead run the attack while a READ's exposure is still pending:
    def traffic():
        fh, _ = yield from nfs.create(nfs.root, "loot")
        yield from nfs.write(fh, 0, b"SECRETS!" * 32 * 1024)
        yield from nfs.read(fh, 0, 256 * 1024)

    c.run(traffic())
    sim = c.sim

    exposed_ever = c.server_node.hca.tpt.stags_exposed_ever
    assert exposed_ever
    # An adversary aiming at recorded stags (e.g. leaked via a bug) gets
    # NAKed only because the windows were since closed by DONE...
    def qp_factory():
        qc, qs = c.fabric.connect(mount.node, c.server_node)
        return qc

    adversary = StagGuessingAdversary(mount.node, qp_factory, seed=3)
    c.run(adversary.run(guesses=20, target_stags=exposed_ever))
    # Closed windows defend: all naks.
    assert adversary.successes.events == 0


# ---------------------------------------------------------------- DONE withholding
def make_rr_cluster_with_withholder():
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = c.mounts[0]
    # Swap in a withholding client on a fresh connection.
    qc, qs = c.fabric.connect(mount.node, c.server_node)
    withholder = DoneWithholdingClient(
        mount.node, qc, c.config.profile.rpcrdma,
        mount.transport.strategy,
    )
    server = ReadReadServer(
        c.server_node, qs, c.config.profile.rpcrdma, c.server_strategy
    )
    server.attach(c.rpc_server)
    withholder.peer_ready = server.ready
    from repro.nfs import NfsClient

    nfs = NfsClient(withholder, c.nfs_server.root_handle())
    return c, nfs, withholder, server


def test_done_withholding_pins_server_buffers_in_rr():
    c, nfs, withholder, server = make_rr_cluster_with_withholder()

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "pinned")
        yield from nfs.write(fh, 0, bytes(1 << 20))
        for i in range(8):
            yield from nfs.read(fh, i * 128 * 1024, 128 * 1024)

    c.run(attack())
    c.sim.run(until=c.sim.now + 100_000.0)
    # Eight reads, zero DONEs: eight exposed windows pinned forever.
    assert withholder.dones_suppressed.events == 8
    assert server.pending_done_count == 8
    report = audit_server_exposure(c.server_node, [server])
    assert report["pending_done_bytes"] >= 8 * 128 * 1024
    assert report["exposed_regions_now"] >= 8


def test_rw_design_immune_to_done_withholding():
    """There is no DONE to withhold: server releases by itself."""
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs

    def traffic():
        fh, _ = yield from nfs.create(nfs.root, "free")
        yield from nfs.write(fh, 0, bytes(1 << 20))
        for i in range(8):
            yield from nfs.read(fh, i * 128 * 1024, 128 * 1024)

    c.run(traffic())
    c.sim.run(until=c.sim.now + 100_000.0)
    report = audit_server_exposure(c.server_node, c.server_transports)
    assert report["exposed_regions_now"] == 0
    assert report["pending_done_ops"] == 0
    assert report["stags_exposed_ever"] == 0


# ---------------------------------------------------------------- out of bounds
def test_out_of_bounds_read_rejected():
    c, nfs, withholder, server = make_rr_cluster_with_withholder()

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "edge")
        yield from nfs.write(fh, 0, bytes(256 * 1024))
        yield from nfs.read(fh, 0, 128 * 1024)

    c.run(attack())
    # A window is pinned open (withheld DONE); try to read past it.
    regions = server.exposed_regions()
    assert regions
    seg = regions[0].segments[0]
    qc, _qs = c.fabric.connect(c.mounts[0].node, c.server_node)
    probe = OutOfBoundsProbe(c.mounts[0].node, qc)
    cqe = c.run(probe.probe(seg, overrun_bytes=4096))
    assert not cqe.ok
    assert probe.rejected.events == 1
    assert probe.leaked.events == 0


def test_exposure_audit_counts_during_rr_workload():
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    run_iozone(c, IozoneParams(nthreads=2, ops_per_thread=10))
    report = audit_server_exposure(c.server_node, c.server_transports)
    # Exposures happened during the run (recorded) but are all released.
    assert report["stags_exposed_ever"] >= 20
    c.sim.run(until=c.sim.now + 100_000.0)
    report = audit_server_exposure(c.server_node, c.server_transports)
    assert report["exposed_regions_now"] == 0


def test_guess_probability_formula():
    assert stag_guess_success_probability(0) == 0.0
    assert stag_guess_success_probability(1) == pytest.approx(2.0**-32)
    assert stag_guess_success_probability(2**32) == 1.0
