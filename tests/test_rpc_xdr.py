"""Unit + property tests for the XDR codec."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError


def roundtrip(build, read):
    enc = XdrEncoder()
    build(enc)
    dec = XdrDecoder(enc.take())
    out = read(dec)
    dec.done()
    return out


def test_u32_roundtrip_and_bounds():
    assert roundtrip(lambda e: e.u32(0xDEADBEEF), lambda d: d.u32()) == 0xDEADBEEF
    with pytest.raises(XdrError):
        XdrEncoder().u32(-1)
    with pytest.raises(XdrError):
        XdrEncoder().u32(2**32)


def test_i32_roundtrip_and_bounds():
    assert roundtrip(lambda e: e.i32(-42), lambda d: d.i32()) == -42
    with pytest.raises(XdrError):
        XdrEncoder().i32(2**31)


def test_u64_i64_roundtrip():
    assert roundtrip(lambda e: e.u64(2**63 + 5), lambda d: d.u64()) == 2**63 + 5
    assert roundtrip(lambda e: e.i64(-(2**62)), lambda d: d.i64()) == -(2**62)


def test_boolean_roundtrip_and_strictness():
    assert roundtrip(lambda e: e.boolean(True), lambda d: d.boolean()) is True
    dec = XdrDecoder(XdrEncoder().u32(7).take())
    with pytest.raises(XdrError):
        dec.boolean()


def test_opaque_padding_to_four_bytes():
    enc = XdrEncoder()
    enc.opaque(b"abcde")  # 5 bytes -> 4 len + 5 data + 3 pad
    raw = enc.take()
    assert len(raw) == 12
    dec = XdrDecoder(raw)
    assert dec.opaque() == b"abcde"
    dec.done()


def test_fixed_opaque():
    out = roundtrip(lambda e: e.fixed_opaque(b"abc", 3), lambda d: d.fixed_opaque(3))
    assert out == b"abc"
    with pytest.raises(XdrError):
        XdrEncoder().fixed_opaque(b"ab", 3)


def test_string_unicode_roundtrip():
    assert roundtrip(lambda e: e.string("fichier-éü"), lambda d: d.string()) == "fichier-éü"


def test_array_roundtrip():
    items = [3, 1, 4, 1, 5]
    out = roundtrip(
        lambda e: e.array(items, lambda enc, i: enc.u32(i)),
        lambda d: d.array(lambda dec: dec.u32()),
    )
    assert out == items


def test_array_cap_enforced():
    raw = XdrEncoder().u32(10**9).take()
    with pytest.raises(XdrError):
        XdrDecoder(raw).array(lambda d: d.u32(), max_items=100)


def test_optional_roundtrip():
    assert roundtrip(
        lambda e: e.optional(7, lambda enc, v: enc.u32(v)),
        lambda d: d.optional(lambda dec: dec.u32()),
    ) == 7
    assert roundtrip(
        lambda e: e.optional(None, lambda enc, v: enc.u32(v)),
        lambda d: d.optional(lambda dec: dec.u32()),
    ) is None


def test_truncated_decode_raises():
    with pytest.raises(XdrError):
        XdrDecoder(b"\x00\x00").u32()


def test_trailing_bytes_detected():
    dec = XdrDecoder(XdrEncoder().u32(1).u32(2).take())
    dec.u32()
    with pytest.raises(XdrError):
        dec.done()


def test_raw_splice_alignment():
    with pytest.raises(XdrError):
        XdrEncoder().raw(b"abc")
    enc = XdrEncoder().raw(b"abcd")
    assert enc.take() == b"abcd"


# ---------------------------------------------------------------- properties
@given(st.binary(max_size=4096))
def test_opaque_roundtrip_property(data):
    raw = XdrEncoder().opaque(data).take()
    assert len(raw) % 4 == 0
    assert XdrDecoder(raw).opaque() == data


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=64))
def test_u32_array_roundtrip_property(values):
    raw = XdrEncoder().array(values, lambda e, v: e.u32(v)).take()
    assert XdrDecoder(raw).array(lambda d: d.u32()) == values


@given(
    st.lists(
        st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1), st.binary(max_size=64)),
        max_size=16,
    )
)
def test_mixed_sequence_roundtrip_property(records):
    enc = XdrEncoder()
    for a, b, c in records:
        enc.u32(a).u64(b).opaque(c)
    dec = XdrDecoder(enc.take())
    for a, b, c in records:
        assert dec.u32() == a
        assert dec.u64() == b
        assert dec.opaque() == c
    dec.done()
