"""Race detector: schedule perturbation + nondeterminism guard.

Three claims, each load-bearing for ``python -m repro check``:

1. A well-behaved figure point is *schedule-invariant*: perturbing
   sibling order with any seed reproduces the baseline metrics bit for
   bit (tier-1 acceptance gate on the fig5-shaped point below).
2. The perturbation is not vacuous: a deliberately order-dependent
   fixture — one callback scheduling same-instant events by iterating a
   collection — is actually reordered and caught.
3. :func:`nondeterminism_guard` traps wall-clock and global-RNG use and
   restores the modules afterwards.
"""

import random
import time

import pytest

from repro.check.races import PerturbedSimulator, nondeterminism_guard
from repro.errors import NondeterminismViolation
from repro.sim import Simulator


# ------------------------------------------------- schedule invariance
def _fig5_shaped_point(perturb_seed=None):
    from repro.experiments.sweep import Point

    cluster = {"transport": "rdma-rw", "strategy": "dynamic",
               "profile": "solaris-sdr"}
    if perturb_seed is not None:
        cluster["perturb_seed"] = perturb_seed
    return Point(
        kind="iozone",
        cluster=cluster,
        params={"nthreads": 2, "record_bytes": 128 * 1024,
                "ops_per_thread": 6},
    )


def test_fig5_point_is_schedule_invariant_across_seeds():
    from repro.experiments.sweep import run_point

    baseline = run_point(_fig5_shaped_point())
    for seed in (1, 7, 13):
        assert run_point(_fig5_shaped_point(perturb_seed=seed)) == baseline


def test_tcp_point_is_schedule_invariant():
    """Regression: TCP message FIFO must not rest on segment boot order.

    ``TcpConnection.send`` once let each segment process claim its tx
    pipeline slot itself, so wire order rested on the incidental boot
    order of sibling processes and IPoIB points diverged under
    perturbation.  The slot is now claimed in ``send`` in message order;
    this pins an IPoIB-shaped point to bit-identical-under-perturbation.
    """
    from repro.experiments.sweep import Point, run_point

    def point(perturb_seed=None):
        cluster = {"transport": "tcp-ipoib", "profile": "solaris-sdr"}
        if perturb_seed is not None:
            cluster["perturb_seed"] = perturb_seed
        return Point(
            kind="iozone",
            cluster=cluster,
            params={"nthreads": 2, "record_bytes": 128 * 1024,
                    "ops_per_thread": 4},
        )

    baseline = run_point(point())
    for seed in (1, 7, 13):
        assert run_point(point(perturb_seed=seed)) == baseline


# ------------------------------------------------- the detector detects
def _sibling_order(sim_cls, *args):
    """Schedule five same-instant timeouts from ONE process callback
    (the footprint of iterating a collection) and record firing order."""
    sim = sim_cls(*args)
    order = []

    def driver():
        for i in range(5):
            t = sim.timeout(10.0)
            t.callbacks.append(lambda ev, i=i: order.append(i))
        yield sim.timeout(20.0)

    sim.run_until_complete(sim.process(driver()))
    return sim, order


def test_order_dependent_fixture_is_caught():
    _, baseline = _sibling_order(Simulator)
    assert baseline == [0, 1, 2, 3, 4]  # engine guarantees FIFO ties
    perturbed = {tuple(_sibling_order(PerturbedSimulator, seed)[1])
                 for seed in range(20)}
    # At least one seed must reorder the siblings, or the detector is
    # vacuous and "bit-identical under perturbation" proves nothing.
    assert any(p != tuple(baseline) for p in perturbed)


def _boot_order(seed):
    """Boot five sibling processes from inside ONE process callback."""
    sim = PerturbedSimulator(seed)
    order = []

    def child(tag):
        order.append(tag)
        yield sim.timeout(1.0)

    def driver():
        for tag in range(5):
            sim.process(child(tag))
        yield sim.timeout(5.0)

    sim.run_until_complete(sim.process(driver()))
    return order


def test_process_boots_keep_program_order_under_perturbation():
    # Booting threads 0, 1, 2... is an explicit host-level choice, and
    # multi-threaded results legitimately depend on who reaches a
    # contended resource first — so boots are exempt from shuffling
    # (races.py module docstring).  Iterating an unordered collection
    # while booting is the static set-iteration lint's job.
    for seed in range(10):
        assert _boot_order(seed) == [0, 1, 2, 3, 4]


def test_perturbed_run_counts_its_tie_groups():
    sim, _ = _sibling_order(PerturbedSimulator, 3)
    assert sim.tie_events > 0


def test_same_seed_is_reproducible_and_cross_region_fifo_holds():
    _, first = _sibling_order(PerturbedSimulator, 9)
    _, again = _sibling_order(PerturbedSimulator, 9)
    assert first == again

    # Events from *different* callbacks (two processes, one schedule
    # each) keep scheduling order even when their instants collide:
    # that order is the engine's documented fairness guarantee.
    sim = PerturbedSimulator(5)
    order = []

    def one(tag):
        yield sim.timeout(10.0)
        order.append(tag)

    sim.process(one("a"))
    sim.process(one("b"))
    sim.run()
    assert order == ["a", "b"]


def test_negative_delay_still_rejected():
    from repro.sim.engine import SimulationError

    sim = PerturbedSimulator(1)
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


# ------------------------------------------------- nondeterminism guard
def test_guard_traps_wallclock_and_global_rng():
    with nondeterminism_guard():
        with pytest.raises(NondeterminismViolation):
            time.time()
        with pytest.raises(NondeterminismViolation):
            time.perf_counter()
        with pytest.raises(NondeterminismViolation):
            random.random()
        with pytest.raises(NondeterminismViolation):
            random.randint(1, 6)
        # Seeded instances are the sanctioned RNG and keep working.
        assert random.Random(3).random() == random.Random(3).random()
    # Everything is restored on exit.
    assert time.time() > 0
    assert 0.0 <= random.random() < 1.0


def test_guard_restores_on_exception():
    with pytest.raises(RuntimeError):
        with nondeterminism_guard():
            raise RuntimeError("boom")
    assert time.monotonic() > 0
