"""Failure injection: QP death, automatic recovery, exactly-once replay."""

from dataclasses import replace

from repro.analysis import SOLARIS_SDR
from repro.core.base import TransportError
from repro.core.config import RpcRdmaConfig
from repro.core.strategies import FmrStrategy
from repro.experiments import Cluster, ClusterConfig
from repro.faults import FaultPlan
from repro.ib.verbs import QPError

NFS_PROG, NFS_VERS = 100003, 3


def kill_connection(cluster, index=0):
    """Fatal error on both ends of one mount's connection."""
    qp = cluster.mounts[index].transport.qp
    qp.enter_error("injected fault")
    qp.peer.enter_error("injected fault (remote)")


def count_executions(cluster):
    """Wrap the NFS program handler to tally (xid, proc) executions."""
    executions: dict = {}
    original = cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)]

    def wrapped(call):
        key = (call.xid, call.proc)
        executions[key] = executions.get(key, 0) + 1
        return (yield from original(call))

    cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)] = wrapped
    return executions


def test_qp_error_fails_inflight_calls_without_reconnect_policy():
    """Legacy fail-fast behaviour, still available with the policy off."""
    c = Cluster(ClusterConfig(transport="rdma-rw", auto_reconnect=False))
    nfs = c.mounts[0].nfs
    outcomes = []

    def victim():
        try:
            fh, _ = yield from nfs.create(nfs.root, "doomed")
            yield from nfs.write(fh, 0, bytes(256 * 1024))
            outcomes.append("ok")
        except (TransportError, QPError):
            outcomes.append("failed")

    def killer():
        yield c.sim.timeout(50.0)  # mid-flight
        kill_connection(c)

    c.sim.process(victim())
    c.sim.process(killer())
    c.sim.run(until=c.sim.now + 5_000_000.0)
    assert outcomes == ["failed"]


def test_inflight_call_recovers_from_qp_error():
    """The tentpole behaviour: a QP kill mid-WRITE heals transparently —
    the transport redials, replays the call, and the data lands."""
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs
    executions = count_executions(c)
    outcomes = []

    def victim():
        fh, _ = yield from nfs.create(nfs.root, "survivor")
        yield from nfs.write(fh, 0, bytes(range(256)) * 1024)
        data, _, _ = yield from nfs.read(fh, 0, 256 * 1024)
        outcomes.append(data)

    def killer():
        yield c.sim.timeout(50.0)  # mid-flight
        kill_connection(c)

    c.sim.process(victim())
    c.sim.process(killer())
    c.sim.run(until=c.sim.now + 60_000_000.0)
    assert outcomes == [bytes(range(256)) * 1024]
    transport = c.mounts[0].transport
    assert transport.reconnects.events >= 1
    assert transport.calls_recovered.events >= 1
    # Exactly-once: no (xid, proc) pair ran the handler twice.
    assert all(n == 1 for n in executions.values())


def test_new_calls_recover_after_failure():
    """A call issued on an already-dead mount redials instead of failing
    (replaces the old "new calls rejected after failure" behaviour)."""
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs

    def warm():
        fh, _ = yield from nfs.create(nfs.root, "pre")
        yield from nfs.write(fh, 0, b"before the crash")
        return fh

    fh = c.run(warm())
    kill_connection(c)

    def after():
        data, _, _ = yield from nfs.read(fh, 0, 100)
        return data

    assert c.run(after()) == b"before the crash"
    assert c.mounts[0].transport.reconnects.events == 1


def test_drc_replay_over_rdma():
    """A lost reply over the RDMA transport is recovered by xid-preserving
    retransmit + DRC replay: the non-idempotent CREATE runs once."""
    profile = replace(
        SOLARIS_SDR,
        rpcrdma=replace(RpcRdmaConfig(), reply_timeout_us=20_000.0),
    )
    c = Cluster(ClusterConfig(transport="rdma-rw", profile=profile,
                              fault_plan=FaultPlan(seed=11)))
    nfs = c.mounts[0].nfs
    executions = count_executions(c)

    def proc():
        # Eat the next message arriving at the client: the CREATE reply.
        c.faults.drop_next("client0", 1)
        fh, _ = yield from nfs.create(nfs.root, "once")
        entries = yield from nfs.readdir(nfs.root)
        return fh, entries

    fh, entries = c.run(proc())
    assert "once" in [e.name for e in entries]
    transport = c.mounts[0].transport
    assert transport.retransmissions.events >= 1
    assert c.faults.messages_dropped.events == 1
    assert c.drc.replays.events + c.drc.drops.events >= 1
    assert all(n == 1 for n in executions.values())


def test_reconnect_resumes_service_with_same_handles():
    c = Cluster(ClusterConfig(transport="rdma-rw", auto_reconnect=False))
    nfs = c.mounts[0].nfs

    def before():
        fh, _ = yield from nfs.create(nfs.root, "durable")
        yield from nfs.write(fh, 0, b"survives reconnect")
        return fh

    fh = c.run(before())
    # Kill the connection.
    kill_connection(c)
    # Manual reconnect: fresh QP + transport; handles remain valid.
    mount = c.reconnect_client(0)

    def after():
        data, _, _ = yield from mount.nfs.read(fh, 0, 100)
        return data

    assert c.run(after()) == b"survives reconnect"


def test_reconnect_reclaims_withheld_rr_buffers():
    """Dropping a DONE-withholding client frees its pinned windows."""
    from repro.nfs import NfsClient
    from repro.core.readread import ReadReadServer
    from repro.security import DoneWithholdingClient

    c = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = c.mounts[0]
    qc, qs = c.fabric.connect(mount.node, c.server_node)
    evil = DoneWithholdingClient(mount.node, qc, c.config.profile.rpcrdma,
                                 mount.transport.strategy)
    server = ReadReadServer(c.server_node, qs, c.config.profile.rpcrdma,
                            c.server_strategy)
    server.attach(c.rpc_server)
    evil.peer_ready = server.ready
    nfs = NfsClient(evil, c.nfs_server.root_handle())

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "bait")
        yield from nfs.write(fh, 0, bytes(512 * 1024))
        for i in range(4):
            yield from nfs.read(fh, i * 128 * 1024, 128 * 1024)

    c.run(attack())
    assert server.pending_done_count == 4
    c.run(server.disconnect())
    assert server.pending_done_count == 0
    assert c.server_node.hca.tpt.remotely_exposed() == []


def test_fmr_pool_exhaustion_falls_back_not_fails():
    """A tiny FMR pool under concurrency silently falls back to dynamic
    registration (the paper's transparent fallback path)."""
    c = Cluster(ClusterConfig(transport="rdma-rw", strategy="fmr"))
    # Shrink the server pool drastically after construction.
    small = FmrStrategy(c.server_node, pool_size=2)
    for st in c.server_transports:
        st.strategy = small
    c.server_strategy = small
    nfs = c.mounts[0].nfs
    done = []

    def op(i):
        fh, _ = yield from nfs.create(nfs.root, f"f{i}")
        yield from nfs.write(fh, 0, bytes(128 * 1024))
        data, _, _ = yield from nfs.read(fh, 0, 128 * 1024)
        done.append(len(data))

    for i in range(8):
        c.sim.process(op(i))
    c.sim.run(until=c.sim.now + 60_000_000.0)
    assert done == [128 * 1024] * 8
    assert small.fallbacks.events > 0      # degradations counted...
    assert small._fallback.acquires.events > 0  # ...and actually taken


def test_rnr_storm_recovers_without_data_loss():
    """Posting far more sends than posted receives triggers RNR retries
    but the credit machinery keeps everything delivered eventually."""
    profile = replace(SOLARIS_SDR, rpcrdma=RpcRdmaConfig(credits=2))
    c = Cluster(ClusterConfig(transport="rdma-rw", profile=profile))
    nfs = c.mounts[0].nfs
    done = []

    def op(i):
        fh, _ = yield from nfs.create(nfs.root, f"n{i}")
        done.append(i)

    for i in range(20):
        c.sim.process(op(i))
    c.sim.run(until=c.sim.now + 60_000_000.0)
    assert sorted(done) == list(range(20))
    assert c.mounts[0].transport.credits.outstanding_peak <= 2


def test_reconnect_tcp_transport():
    c = Cluster(ClusterConfig(transport="tcp-gige"))
    nfs = c.mounts[0].nfs

    def before():
        fh, _ = yield from nfs.create(nfs.root, "t")
        yield from nfs.write(fh, 0, b"tcp data")
        return fh

    fh = c.run(before())
    mount = c.reconnect_client(0)

    def after():
        data, _, _ = yield from mount.nfs.read(fh, 0, 10)
        return data

    assert c.run(after()) == b"tcp data"


def test_experiment_runners_smoke():
    """The fast experiment runners produce well-formed rows."""
    from repro.experiments.figures import run_security_audit, run_table1

    t1 = run_table1()
    assert len(t1.rows) == 2
    assert t1.headers[0] == "primitive"
    audit = run_security_audit()
    designs = [row[0] for row in audit.rows]
    assert designs == ["rdma-rr", "rdma-rw"]
