"""Failure injection: QP death, reconnection, pool exhaustion under load."""

import pytest

from repro.core.base import TransportError
from repro.core.strategies import FmrStrategy
from repro.experiments import Cluster, ClusterConfig
from repro.ib.verbs import QPError
from repro.nfs import NfsError


def test_qp_error_fails_inflight_calls():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs
    outcomes = []

    def victim():
        try:
            fh, _ = yield from nfs.create(nfs.root, "doomed")
            yield from nfs.write(fh, 0, bytes(256 * 1024))
            outcomes.append("ok")
        except (TransportError, QPError):
            outcomes.append("failed")

    def killer():
        yield c.sim.timeout(50.0)  # mid-flight
        c.mounts[0].transport.qp.enter_error("injected fault")
        c.server_transports[0].qp.enter_error("injected fault (remote)")

    c.sim.process(victim())
    c.sim.process(killer())
    c.sim.run(until=c.sim.now + 5_000_000.0)
    assert outcomes == ["failed"]


def test_new_calls_rejected_after_failure():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs

    def warm():
        fh, _ = yield from nfs.create(nfs.root, "pre")
        return fh

    fh = c.run(warm())
    c.mounts[0].transport.qp.enter_error("injected")
    c.mounts[0].transport.failed = True

    def after():
        try:
            yield from nfs.getattr(fh)
        except (TransportError, QPError):
            return "rejected"
        return "unexpected"

    assert c.run(after()) == "rejected"


def test_reconnect_resumes_service_with_same_handles():
    c = Cluster(ClusterConfig(transport="rdma-rw"))
    nfs = c.mounts[0].nfs

    def before():
        fh, _ = yield from nfs.create(nfs.root, "durable")
        yield from nfs.write(fh, 0, b"survives reconnect")
        return fh

    fh = c.run(before())
    # Kill the connection.
    c.mounts[0].transport.qp.enter_error("injected")
    c.mounts[0].transport.failed = True
    # Reconnect: fresh QP + transport; handles remain valid.
    mount = c.reconnect_client(0)

    def after():
        data, _, _ = yield from mount.nfs.read(fh, 0, 100)
        return data

    assert c.run(after()) == b"survives reconnect"


def test_reconnect_reclaims_withheld_rr_buffers():
    """Dropping a DONE-withholding client frees its pinned windows."""
    from repro.nfs import NfsClient
    from repro.core.readread import ReadReadServer
    from repro.security import DoneWithholdingClient

    c = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = c.mounts[0]
    qc, qs = c.fabric.connect(mount.node, c.server_node)
    evil = DoneWithholdingClient(mount.node, qc, c.config.profile.rpcrdma,
                                 mount.transport.strategy)
    server = ReadReadServer(c.server_node, qs, c.config.profile.rpcrdma,
                            c.server_strategy)
    server.attach(c.rpc_server)
    evil.peer_ready = server.ready
    nfs = NfsClient(evil, c.nfs_server.root_handle())

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "bait")
        yield from nfs.write(fh, 0, bytes(512 * 1024))
        for i in range(4):
            yield from nfs.read(fh, i * 128 * 1024, 128 * 1024)

    c.run(attack())
    assert server.pending_done_count == 4
    c.run(server.disconnect())
    assert server.pending_done_count == 0
    assert c.server_node.hca.tpt.remotely_exposed() == []


def test_fmr_pool_exhaustion_falls_back_not_fails():
    """A tiny FMR pool under concurrency silently falls back to dynamic
    registration (the paper's transparent fallback path)."""
    c = Cluster(ClusterConfig(transport="rdma-rw", strategy="fmr"))
    # Shrink the server pool drastically after construction.
    small = FmrStrategy(c.server_node, pool_size=2)
    for st in c.server_transports:
        st.strategy = small
    c.server_strategy = small
    nfs = c.mounts[0].nfs
    done = []

    def op(i):
        fh, _ = yield from nfs.create(nfs.root, f"f{i}")
        yield from nfs.write(fh, 0, bytes(128 * 1024))
        data, _, _ = yield from nfs.read(fh, 0, 128 * 1024)
        done.append(len(data))

    for i in range(8):
        c.sim.process(op(i))
    c.sim.run(until=c.sim.now + 60_000_000.0)
    assert done == [128 * 1024] * 8
    assert small._fallback.acquires.events > 0  # fallback actually used


def test_rnr_storm_recovers_without_data_loss():
    """Posting far more sends than posted receives triggers RNR retries
    but the credit machinery keeps everything delivered eventually."""
    from repro.core.config import RpcRdmaConfig
    from dataclasses import replace
    from repro.analysis import SOLARIS_SDR

    profile = replace(SOLARIS_SDR, rpcrdma=RpcRdmaConfig(credits=2))
    c = Cluster(ClusterConfig(transport="rdma-rw", profile=profile))
    nfs = c.mounts[0].nfs
    done = []

    def op(i):
        fh, _ = yield from nfs.create(nfs.root, f"n{i}")
        done.append(i)

    for i in range(20):
        c.sim.process(op(i))
    c.sim.run(until=c.sim.now + 60_000_000.0)
    assert sorted(done) == list(range(20))
    assert c.mounts[0].transport.credits.outstanding_peak <= 2


def test_reconnect_tcp_transport():
    c = Cluster(ClusterConfig(transport="tcp-gige"))
    nfs = c.mounts[0].nfs

    def before():
        fh, _ = yield from nfs.create(nfs.root, "t")
        yield from nfs.write(fh, 0, b"tcp data")
        return fh

    fh = c.run(before())
    mount = c.reconnect_client(0)

    def after():
        data, _, _ = yield from mount.nfs.read(fh, 0, 10)
        return data

    assert c.run(after()) == b"tcp data"


def test_experiment_runners_smoke():
    """The fast experiment runners produce well-formed rows."""
    from repro.experiments.figures import run_security_audit, run_table1

    t1 = run_table1()
    assert len(t1.rows) == 2
    assert t1.headers[0] == "primitive"
    audit = run_security_audit()
    designs = [row[0] for row in audit.rows]
    assert designs == ["rdma-rr", "rdma-rw"]
