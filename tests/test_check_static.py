"""Fixture tests for the static contract analyzer (repro.check.static).

Every rule pack gets a good/bad source pair driven through
``analyze_source`` — the bad fixture must produce exactly the expected
rule, the good twin must be silent — plus the self-check that the repo's
own tree analyzes clean (the bring-up contract: every finding was either
fixed or suppressed with a justification) and a CLI smoke.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.check.static import analyze, analyze_source, rule_names


def rules_of(report):
    return {f.rule for f in report.findings}


def run(source: str, **kwargs):
    return analyze_source(textwrap.dedent(source), **kwargs)


# ---------------------------------------------------------------- purity
def test_purity_bad_wallclock():
    report = run("""
        import time

        def stamp(sim):
            return time.time()
    """)
    assert "wallclock" in rules_of(report)


def test_purity_good_sim_clock():
    report = run("""
        def stamp(sim):
            return sim.now
    """)
    assert report.ok


# ---------------------------------------------------------------- zerocost
def test_zerocost_bad_unguarded_touchpoint():
    report = run("""
        class Transport:
            def send(self, n):
                self.sim.telemetry.tracer.begin("send", "t", "c", "l")
    """)
    assert rules_of(report) == {"zero-cost-off"}


def test_zerocost_good_guarded_touchpoint():
    report = run("""
        class Transport:
            def send(self, n):
                telemetry = self.sim.telemetry
                if telemetry is not None and telemetry.tracer is not None:
                    telemetry.tracer.begin("send", "t", "c", "l")
    """)
    assert report.ok


def test_zerocost_good_early_return_guard():
    report = run("""
        class Transport:
            def span(self):
                telemetry = self.sim.telemetry
                if telemetry is None or telemetry.tracer is None:
                    return None
                tracer = telemetry.tracer
                return tracer.begin("op", "t", "c", "l")
    """)
    assert report.ok


def test_zerocost_guard_does_not_leak_past_branch():
    report = run("""
        class Transport:
            def send(self):
                if self.sim.telemetry is not None:
                    pass
                self.sim.telemetry.tracer
    """)
    assert rules_of(report) == {"zero-cost-off"}


def test_zerocost_only_in_hot_modules():
    report = run(
        """
        class Host:
            def report(self):
                return self.sim.telemetry.tracer
        """,
        name="repro.experiments.fixture",
    )
    assert report.ok


# ---------------------------------------------------------------- interproc
def test_interproc_bad_laundered_wallclock():
    report = run("""
        import time

        def bench_stamp():
            return time.time()  # lint-sim: allow[wallclock]

        def transfer(sim):
            return bench_stamp()
    """)
    assert "purity-escape" in rules_of(report)
    assert "wallclock" not in rules_of(report)  # suppressed at its site


def test_interproc_reports_call_chain():
    report = run("""
        import time

        def inner():
            return time.time()  # lint-sim: allow[wallclock]

        def middle():
            return inner()  # lint-sim: allow[purity-escape]

        def transfer(sim):
            return middle()
    """)
    escape = [f for f in report.findings if f.rule == "purity-escape"]
    assert len(escape) == 1
    assert "middle" in escape[0].message and "inner" in escape[0].message


def test_interproc_good_pure_helper():
    report = run("""
        def pad(n):
            return (n + 3) & ~3

        def transfer(sim):
            return pad(10)
    """)
    assert report.ok


# ---------------------------------------------------------------- procgen
def test_procgen_bad_non_event_yield():
    report = run("""
        def worker(sim):
            yield 5

        def main(sim):
            sim.process(worker(sim))
    """)
    assert rules_of(report) == {"process-yield"}


def test_procgen_yield_from_closure():
    report = run("""
        def helper(sim):
            yield "not an event"

        def worker(sim):
            yield from helper(sim)

        def main(sim):
            sim.process(worker(sim))
    """)
    assert rules_of(report) == {"process-yield"}


def test_procgen_good_event_yields():
    report = run("""
        def worker(sim, ev):
            yield sim.timeout(5)
            yield ev

        def main(sim, ev):
            sim.process(worker(sim, ev))
    """)
    assert report.ok


def test_procgen_plain_iterators_stay_free():
    report = run("""
        def numbers():
            yield 1
            yield 2

        def main(sim):
            return list(numbers())
    """)
    assert report.ok


def test_procgen_bad_generator_callback():
    report = run("""
        def on_done(ev):
            yield ev

        def main(ev):
            ev.callbacks.append(on_done)
    """)
    assert rules_of(report) == {"callback-yield"}


def test_procgen_good_plain_callback():
    report = run("""
        def on_done(ev):
            print(ev)

        def main(ev):
            ev.callbacks.append(on_done)
    """)
    assert report.ok


def test_procgen_bad_double_trigger():
    report = run("""
        def finish(ev):
            ev.succeed(1)
            ev.succeed(2)
    """)
    assert rules_of(report) == {"double-trigger"}


def test_procgen_bad_loop_invariant_trigger():
    report = run("""
        def finish(ev, items):
            for item in items:
                ev.succeed(item)
    """)
    assert rules_of(report) == {"double-trigger"}


def test_procgen_good_guarded_and_fresh_triggers():
    report = run("""
        def finish(events, done):
            for ev in events:
                ev.succeed()
            for item in (1, 2):
                if not done.triggered:
                    done.succeed(item)
    """)
    assert report.ok


# ---------------------------------------------------------------- wire
WIRE_BAD = """
    class Header:
        def encode(self, enc):
            enc.u32(self.xid)
            enc.u64(self.offset)

        @classmethod
        def decode(cls, dec):
            xid = dec.u32()
            offset = dec.u32()
            return cls(xid, offset)
"""

WIRE_GOOD = """
    class Header:
        def encode(self, enc):
            enc.u32(self.xid)
            enc.u64(self.offset)
            if self.version >= 2:
                enc.u32(self.lane)

        @classmethod
        def decode(cls, dec):
            xid = dec.u32()
            offset = dec.u64()
            lane = 0
            if dec.peek_version() >= 2:
                lane = dec.u32()
            return cls(xid, offset, lane)
"""


def test_wire_bad_mismatched_field():
    report = run(WIRE_BAD, name="repro.core.header")
    assert rules_of(report) == {"wire-symmetry"}
    (finding,) = report.findings
    assert "u64" in finding.message and "u32" in finding.message


def test_wire_good_symmetric_with_optional_group():
    report = run(WIRE_GOOD, name="repro.core.header")
    assert report.ok


def test_wire_scoped_to_wire_modules():
    # The same asymmetric codec outside the wire modules is not checked.
    report = run(WIRE_BAD, name="repro.experiments.fixture")
    assert report.ok


def test_wire_missing_trailing_read():
    report = run(
        """
        class Msg:
            def encode(self, enc):
                enc.u32(1).opaque(self.body)

            @classmethod
            def decode(cls, dec):
                return cls(dec.u32())
        """,
        name="repro.rpc.msg",
    )
    (finding,) = report.findings
    assert finding.rule == "wire-symmetry"
    assert "never read" in finding.message


# ---------------------------------------------------------------- boundary
def test_boundary_bad_broad_except():
    report = run("""
        def deliver(msg):
            try:
                msg.send()
            except Exception:
                return None
    """)
    assert rules_of(report) == {"exception-boundary"}


def test_boundary_bad_repro_error():
    report = run("""
        from repro.errors import ReproError

        def deliver(msg):
            try:
                msg.send()
            except (ValueError, ReproError):
                return None
    """)
    assert rules_of(report) == {"exception-boundary"}


def test_boundary_good_reraise_and_narrow():
    report = run("""
        from repro.errors import ProtectionError

        def deliver(msg):
            try:
                msg.send()
            except ProtectionError:
                return None
            except Exception:
                msg.log()
                raise
    """)
    assert report.ok


def test_boundary_scoped_to_transport_modules():
    report = run(
        """
        def host_side(fn):
            try:
                fn()
            except Exception:
                return None
        """,
        name="repro.experiments.fixture",
    )
    assert report.ok


# ------------------------------------------------------- suppressions/audit
def test_suppression_silences_finding():
    report = run("""
        import time

        def stamp(sim):
            return time.time()  # lint-sim: allow[wallclock]
    """)
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["wallclock"]


def test_unused_suppression_is_a_finding():
    report = run("""
        def stamp(sim):
            return sim.now  # lint-sim: allow[wallclock]
    """)
    assert rules_of(report) == {"unused-suppression"}


def test_docstring_mention_is_not_a_suppression():
    report = run('''
        def stamp(sim):
            """Suppress with ``# lint-sim: allow[wallclock]`` if needed."""
            return sim.now
    ''')
    assert report.ok


# ---------------------------------------------------------------- selection
def test_rule_selection_restricts_packs():
    report = run(
        """
        import time

        def stamp(sim):
            return time.time()
        """,
        rules=["zero-cost-off"],
    )
    assert report.ok  # wallclock not selected
    assert report.rules_run == ("zero-cost-off",)


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        analyze_source("x = 1", rules=["bogus"])


def test_rule_names_cover_all_packs():
    names = rule_names()
    for expected in ("wallclock", "zero-cost-off", "purity-escape",
                     "process-yield", "callback-yield", "double-trigger",
                     "wire-symmetry", "exception-boundary",
                     "unused-suppression"):
        assert expected in names


# ---------------------------------------------------------------- self-check
def test_repo_tree_analyzes_clean():
    """The bring-up contract: the shipped tree has zero findings."""
    report = analyze()
    assert report.findings == []
    assert report.modules_scanned > 100


# ---------------------------------------------------------------- CLI
def test_cli_static_text(capsys):
    from repro.__main__ import main

    assert main(["check", "--static"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_static_json_with_rule(capsys):
    from repro.__main__ import main

    assert main(["check", "--static", "--rule", "wire",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["rules_run"] == ["wire-symmetry"]


def test_cli_rule_requires_static(capsys):
    from repro.__main__ import main

    assert main(["check", "--rule", "wire"]) == 2
