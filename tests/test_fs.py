"""Tests for the file-system substrates: tmpfs, disks, RAID, page cache,
and the disk-backed extent FS."""

import pytest

from repro.fs import (
    BlockFs,
    Disk,
    DiskConfig,
    FileKind,
    FsError,
    PageCache,
    Raid0,
    TmpFs,
)
from repro.osmodel import CPU, CPUConfig
from repro.sim import DeterministicRNG, Simulator


def make_tmpfs():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    return sim, TmpFs(sim, cpu)


def run(sim, gen):
    return sim.run_until_complete(sim.process(gen))


# ---------------------------------------------------------------- tmpfs
def test_tmpfs_create_write_read_roundtrip():
    sim, fs = make_tmpfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "data.bin")
        yield from fs.write(fid, 0, b"hello world")
        data, eof = yield from fs.read(fid, 0, 100)
        return data, eof

    data, eof = run(sim, proc())
    assert data == b"hello world"
    assert eof


def test_tmpfs_partial_read_and_offsets():
    sim, fs = make_tmpfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(range(100)))
        mid, eof1 = yield from fs.read(fid, 10, 20)
        tail, eof2 = yield from fs.read(fid, 90, 50)
        return mid, eof1, tail, eof2

    mid, eof1, tail, eof2 = run(sim, proc())
    assert mid == bytes(range(10, 30))
    assert not eof1
    assert tail == bytes(range(90, 100))
    assert eof2


def test_tmpfs_sparse_write_zero_fills():
    sim, fs = make_tmpfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "sparse")
        yield from fs.write(fid, 100, b"xx")
        data, _ = yield from fs.read(fid, 0, 102)
        return data

    data = run(sim, proc())
    assert data[:100] == bytes(100)
    assert data[100:] == b"xx"


def test_tmpfs_namespace_operations():
    sim, fs = make_tmpfs()

    def proc():
        d = yield from fs.mkdir(fs.root_id, "dir")
        f = yield from fs.create(d, "file")
        s = yield from fs.symlink(d, "link", "/dir/file")
        assert (yield from fs.lookup(d, "file")) == f
        assert (yield from fs.readlink(s)) == "/dir/file"
        entries = yield from fs.readdir(d)
        assert [e.name for e in entries] == ["file", "link"]
        yield from fs.rename(d, "file", fs.root_id, "moved")
        assert (yield from fs.lookup(fs.root_id, "moved")) == f
        yield from fs.remove(fs.root_id, "moved")
        yield from fs.remove(d, "link")
        yield from fs.rmdir(fs.root_id, "dir")
        entries = yield from fs.readdir(fs.root_id)
        return entries

    assert run(sim, proc()) == []


def test_tmpfs_errors():
    sim, fs = make_tmpfs()

    def expect(status, gen):
        try:
            yield from gen
        except FsError as exc:
            assert exc.status == status
        else:
            raise AssertionError(f"expected {status}")

    def proc():
        yield from expect("NOENT", fs.lookup(fs.root_id, "ghost"))
        fid = yield from fs.create(fs.root_id, "f")
        yield from expect("EXIST", fs.create(fs.root_id, "f"))
        yield from expect("NOTDIR", fs.lookup(fid, "x"))
        d = yield from fs.mkdir(fs.root_id, "d")
        yield from fs.create(d, "inner")
        yield from expect("NOTEMPTY", fs.rmdir(fs.root_id, "d"))
        yield from expect("ISDIR", fs.remove(fs.root_id, "d"))
        yield from expect("STALE", fs.getattr(99999))

    run(sim, proc())


def test_tmpfs_setattr_truncate_and_extend():
    sim, fs = make_tmpfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "t")
        yield from fs.write(fid, 0, b"abcdef")
        yield from fs.setattr(fid, size=3)
        short, _ = yield from fs.read(fid, 0, 10)
        yield from fs.setattr(fid, size=6)
        padded, _ = yield from fs.read(fid, 0, 10)
        return short, padded

    short, padded = run(sim, proc())
    assert short == b"abc"
    assert padded == b"abc\x00\x00\x00"


def test_tmpfs_capacity_enforced():
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    fs = TmpFs(sim, cpu, capacity_bytes=1024)

    def proc():
        fid = yield from fs.create(fs.root_id, "big")
        try:
            yield from fs.write(fid, 0, bytes(2048))
        except FsError as exc:
            return exc.status
        return "no-error"

    assert run(sim, proc()) == "NOSPC"


# ---------------------------------------------------------------- disk
def test_disk_sequential_faster_than_random():
    sim = Simulator()
    disk = Disk(sim, DiskConfig(), DeterministicRNG(5, "d"))

    def seq():
        for i in range(10):
            yield from disk.read(i * 64 * 1024, 64 * 1024)
        return sim.now

    t_seq = run(sim, seq())

    sim2 = Simulator()
    disk2 = Disk(sim2, DiskConfig(), DeterministicRNG(5, "d"))

    def rand():
        for i in range(10):
            yield from disk2.read(i * 500 << 20, 64 * 1024)
        return sim2.now

    t_rand = sim2.run_until_complete(sim2.process(rand()))
    assert t_rand > 3 * t_seq


def test_disk_streaming_rate():
    sim = Simulator()
    disk = Disk(sim, DiskConfig(streaming_mb_s=30.0), DeterministicRNG(5, "d"))
    size = 16 << 20

    def proc():
        pos = 0
        while pos < size:
            yield from disk.read(pos, 1 << 20)
            pos += 1 << 20
        return sim.now

    elapsed = run(sim, proc())
    assert size / elapsed == pytest.approx(30.0, rel=0.05)


def test_disk_serializes_requests():
    sim = Simulator()
    disk = Disk(sim, DiskConfig(), DeterministicRNG(5, "d"))
    ends = []

    def proc():
        yield from disk.read(0, 3 << 20)  # ~100ms at 30MB/s
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert ends[1] >= 2 * ends[0] * 0.9


# ---------------------------------------------------------------- raid
def test_raid0_aggregate_bandwidth_scales():
    results = {}
    for ndisks in (1, 8):
        sim = Simulator()
        raid = Raid0(sim, ndisks=ndisks, stripe_unit_bytes=64 * 1024)
        size = 16 << 20

        def proc():
            pos = 0
            while pos < size:
                yield from raid.read(pos, 1 << 20)
                pos += 1 << 20
            return sim.now

        results[ndisks] = size / sim.run_until_complete(sim.process(proc()))
    assert results[1] == pytest.approx(30.0, rel=0.1)
    assert results[8] > 5 * results[1]  # near 240 MB/s aggregate


def test_raid0_piece_mapping_covers_request():
    sim = Simulator()
    raid = Raid0(sim, ndisks=4, stripe_unit_bytes=64 * 1024)
    pieces = list(raid._pieces(100 * 1024, 300 * 1024))
    assert sum(p[2] for p in pieces) == 300 * 1024
    # Crossing stripe boundaries touches multiple disks.
    assert len({id(p[0]) for p in pieces}) > 1


def test_raid0_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Raid0(sim, ndisks=0)
    with pytest.raises(ValueError):
        Raid0(sim, ndisks=2, stripe_unit_bytes=100)


# ---------------------------------------------------------------- page cache
def test_pagecache_hit_after_insert():
    cache = PageCache(capacity_bytes=4 * 64 * 1024)
    key = (1, 0)
    assert not cache.touch(key)
    cache.insert(key)
    assert cache.touch(key)
    assert cache.hit_ratio() == 0.5


def test_pagecache_lru_eviction_order():
    cache = PageCache(capacity_bytes=2 * 64 * 1024)
    cache.insert((1, 0))
    cache.insert((1, 1))
    cache.touch((1, 0))        # promote page 0
    evicted = cache.insert((1, 2))
    assert [k for k, _ in evicted] == [(1, 1)]  # LRU page went


def test_pagecache_dirty_eviction_reported():
    cache = PageCache(capacity_bytes=64 * 1024)
    cache.insert((1, 0), dirty=True)
    evicted = cache.insert((1, 1))
    assert evicted == [((1, 0), True)]
    assert cache.writebacks.events == 1


def test_pagecache_capacity_never_exceeded():
    cache = PageCache(capacity_bytes=8 * 64 * 1024)
    for i in range(100):
        cache.insert((1, i))
        assert cache.resident_bytes <= cache.capacity_bytes


def test_pagecache_invalidate_file():
    cache = PageCache(capacity_bytes=16 * 64 * 1024)
    for i in range(4):
        cache.insert((7, i))
    cache.insert((8, 0))
    assert cache.invalidate(7) == 4
    assert cache.resident_pages == 1


def test_pagecache_mark_clean():
    cache = PageCache(capacity_bytes=4 * 64 * 1024)
    cache.insert((1, 0), dirty=True)
    assert cache.dirty_pages() == [(1, 0)]
    cache.mark_clean((1, 0))
    assert cache.dirty_pages() == []


# ---------------------------------------------------------------- blockfs
def make_blockfs(cache_bytes=4 << 20, ndisks=8, flush_interval_us=0.0):
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    raid = Raid0(sim, ndisks=ndisks)
    fs = BlockFs(sim, cpu, raid, cache_bytes=cache_bytes,
                 flush_interval_us=flush_interval_us)
    return sim, fs


def test_blockfs_write_read_roundtrip():
    sim, fs = make_blockfs()
    blob = bytes(i % 253 for i in range(300 * 1024))

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, blob)
        data, eof = yield from fs.read(fid, 0, len(blob))
        return data, eof

    data, eof = run(sim, proc())
    assert data == blob
    assert eof


def test_blockfs_partial_page_rmw():
    sim, fs = make_blockfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, b"A" * 100)
        yield from fs.write(fid, 50, b"B" * 10)
        data, _ = yield from fs.read(fid, 0, 100)
        return data

    data = run(sim, proc())
    assert data == b"A" * 50 + b"B" * 10 + b"A" * 40


def test_blockfs_cached_read_is_fast_uncached_is_slow():
    sim, fs = make_blockfs(cache_bytes=64 << 20)
    size = 4 << 20

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(size))
        yield from fs.commit(fid)
        t0 = sim.now
        yield from fs.read(fid, 0, size)
        warm = sim.now - t0
        return warm

    warm = run(sim, proc())
    # Warm read never touches the spindles: memcpy-speed only.
    base_reads = sum(d.bytes_read.value for d in fs.raid.disks)
    assert base_reads == 0
    assert warm < 6000.0  # ~4MB of memcpy, not ~17ms of disk


def test_blockfs_read_misses_hit_disks():
    sim, fs = make_blockfs(cache_bytes=1 << 20)  # tiny cache
    size = 8 << 20

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(size))
        yield from fs.commit(fid)
        # Working set exceeded the cache: sequential re-read must miss.
        yield from fs.read(fid, 0, size)

    run(sim, proc())
    assert sum(d.bytes_read.value for d in fs.raid.disks) >= size * 0.9


def test_blockfs_commit_flushes_dirty_pages():
    sim, fs = make_blockfs(cache_bytes=64 << 20)

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(1 << 20))
        before = sum(d.bytes_written.value for d in fs.raid.disks)
        yield from fs.commit(fid)
        after = sum(d.bytes_written.value for d in fs.raid.disks)
        return before, after

    before, after = run(sim, proc())
    assert before == 0          # unstable write: nothing on disk yet
    assert after >= 1 << 20     # commit pushed it out
    assert fs.cache.dirty_pages() == []


def test_blockfs_background_flusher_cleans():
    sim, fs = make_blockfs(cache_bytes=64 << 20, flush_interval_us=1000.0)

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(256 * 1024))

    run(sim, proc())
    sim.run(until=sim.now + 1_000_000.0)
    assert fs.cache.dirty_pages() == []


def test_blockfs_page_interning_dedupes_identical_pages():
    sim, fs = make_blockfs()
    pattern = bytes(range(256)) * 256  # one 64KB page content

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        for i in range(16):
            yield from fs.write(fid, i * 64 * 1024, pattern)

    run(sim, proc())
    stored = {id(v) for v in fs._content.values()}
    assert len(stored) == 1  # sixteen pages, one interned object


def test_blockfs_unlink_reclaims_everything():
    sim, fs = make_blockfs()

    def proc():
        fid = yield from fs.create(fs.root_id, "f")
        yield from fs.write(fid, 0, bytes(range(256)) * 1024)
        yield from fs.remove(fs.root_id, "f")
        return fid

    fid = run(sim, proc())
    assert not [k for k in fs._content if k[0] == fid]
    assert fs.cache.resident_pages == 0
    assert fs.used_bytes == 0
