"""Coverage for analysis helpers, tracing and the CLI."""

import pytest

from repro.analysis import LatencyRecorder, LatencySummary, summarize_mb_s
from repro.analysis.stats import BandwidthWindow, format_table
from repro.sim import Simulator, Tracer


# ---------------------------------------------------------------- stats
def test_bandwidth_window_accounting():
    win = BandwidthWindow()
    win.open(100.0)
    win.account(1000, 150.0)
    win.account(1000, 200.0)
    assert win.elapsed_us == 100.0
    assert win.mb_s == pytest.approx(20.0)


def test_bandwidth_window_empty_is_zero():
    win = BandwidthWindow()
    win.open(5.0)
    assert win.mb_s == 0.0


def test_summarize_mb_s():
    assert summarize_mb_s(131072, 131.072) == pytest.approx(1000.0)
    assert summarize_mb_s(100, 0) == 0.0


def test_format_table_alignment():
    out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) == len(lines[0]) or True for line in lines)
    assert "long-name" in lines[3]


# ---------------------------------------------------------------- latency
def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    for v in range(1, 101):
        rec.record(float(v))
    s = rec.summarize()
    assert s.count == 100
    assert s.mean == pytest.approx(50.5)
    assert s.p50 == pytest.approx(50.5)
    assert s.p99 == pytest.approx(99.01)
    assert s.maximum == 100.0


def test_latency_recorder_growth_beyond_capacity():
    rec = LatencyRecorder(initial_capacity=4)
    for v in range(100):
        rec.record(float(v))
    assert len(rec) == 100
    assert rec.summarize().maximum == 99.0


def test_latency_recorder_rejects_negative():
    with pytest.raises(ValueError):
        LatencyRecorder().record(-1.0)


def test_latency_empty_summary():
    s = LatencyRecorder().summarize()
    assert s == LatencySummary.empty()


def test_latency_merge():
    a, b = LatencyRecorder(), LatencyRecorder()
    for v in (1.0, 2.0):
        a.record(v)
    b.record(10.0)
    merged = a.merge(b)
    assert len(merged) == 3
    assert merged.summarize().maximum == 10.0


# ---------------------------------------------------------------- tracer
def test_tracer_counts_without_recording():
    sim = Simulator()
    tracer = Tracer(enabled=False)
    tracer.emit(sim, "op", {"n": 1})
    tracer.emit(sim, "op")
    assert tracer.count("op") == 2
    assert tracer.records == []


def test_tracer_records_when_enabled():
    sim = Simulator()
    tracer = Tracer(enabled=True)
    tracer.emit(sim, "alpha", 1)
    tracer.emit(sim, "beta", 2)
    assert len(tracer.of("alpha")) == 1
    tracer.clear()
    assert tracer.count("alpha") == 0


# ---------------------------------------------------------------- CLI
def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "fig10" in out


def test_cli_run_table1(capsys):
    from repro.__main__ import main

    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "channel" in out and "memory" in out


def test_cli_iozone_smoke(capsys):
    from repro.__main__ import main

    assert main(["iozone", "--threads", "2", "--ops", "10"]) == 0
    out = capsys.readouterr().out
    assert "MB/s" in out


def test_cli_postmark_smoke(capsys):
    from repro.__main__ import main

    assert main([
        "postmark", "--files", "5", "--transactions", "20", "--threads", "2",
    ]) == 0
    assert "txns/s" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["run", "fig99"])


# ---------------------------------------------------------------- plots
def test_bar_chart_scales_to_max():
    from repro.analysis.plot import bar_chart

    out = bar_chart(["a", "bb"], [50.0, 100.0], width=10)
    lines = out.splitlines()
    assert lines[1].count("█") == 10      # max fills the width
    assert 4 <= lines[0].count("█") <= 6  # half-scale bar


def test_bar_chart_validation_and_empty():
    from repro.analysis.plot import bar_chart

    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert bar_chart([], []) == "(no data)"


def test_series_chart_shared_scale():
    from repro.analysis.plot import series_chart

    out = series_chart({"fast": {"1": 100.0}, "slow": {"1": 10.0}}, width=10)
    assert "-- fast --" in out and "-- slow --" in out
    fast_line = [l for l in out.splitlines() if l.endswith("100")][0]
    slow_line = [l for l in out.splitlines() if l.endswith(" 10")][0]
    assert fast_line.count("█") > slow_line.count("█")
