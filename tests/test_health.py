"""Health subsystem tests: SLO layering, per-check grading, the gate.

Covers the PR's acceptance criteria:

* every check crosses OK → WARN → CRITICAL on a synthetic registry as
  its SLO thresholds dictate (no cluster needed);
* SLO files layer defaults ← ``[checks]`` ← ``[figures.<exp>.checks]``
  with per-verb latency overrides, in both TOML and JSON;
* ``run_health`` on a real fig5 point exits 0 against the committed
  SLO, and all three sinks render it;
* a chaos soak with an injected server crash exits 1 on defaults and 2
  under a tightened SLO that names the failing check.
"""

from __future__ import annotations

import json

import pytest

from repro.health import (
    CHECKS,
    CheckContext,
    Status,
    load_slo_file,
    resolve_slo,
    run_health,
)
from repro.health.sinks import render_json, render_otel, render_stdout
from repro.telemetry.registry import Registry


# ------------------------------------------------------------ test harness
def synth(scalars=None, labeled=None, latency=None) -> Registry:
    """A registry with the given values and no cluster behind it.

    ``scalars`` maps metric name -> value (unlabeled gauge); ``labeled``
    maps name -> {label_key: {label_value: value}} flattened as
    ``name -> [(labels_dict, value), ...]``; ``latency`` maps verb ->
    list of microsecond samples.
    """
    reg = Registry()
    for name, value in (scalars or {}).items():
        reg.attach(name, lambda v=value: float(v))
    for name, entries in (labeled or {}).items():
        for labels, value in entries:
            reg.attach(name, lambda v=value: float(v), **labels)
    if latency:
        hist = reg.histogram("nfs_client_latency_us", "", ("mount", "verb"))
        for verb, samples in latency.items():
            for s in samples:
                hist.observe(s, mount="c0", verb=verb)
    return reg


def grade(check: str, registry: Registry, slo_data=None, experiment="figX",
          **ctx_kwargs) -> object:
    slo = resolve_slo(slo_data, experiment)
    ctx = CheckContext(registry=registry, slo=slo, experiment=experiment,
                       **ctx_kwargs)
    return CHECKS[check](ctx)


# ------------------------------------------------------------ SLO layering
def test_slo_defaults_resolve():
    slo = resolve_slo(None, "fig5")
    assert slo.get("srq", "low_watermark_hits_warn") == 1
    assert slo.get("latency", "p99_crit_us") is None
    assert slo.source == "defaults"


def test_slo_file_layers_and_figure_overrides():
    data = {
        "checks": {"credits": {"stall_rate_warn": 0.5},
                   "latency": {"p99_warn_us": 1000.0}},
        "figures": {"fig11": {"checks": {"credits": {"stall_rate_warn": 0.9}}}},
    }
    base = resolve_slo(data, "fig5")
    assert base.get("credits", "stall_rate_warn") == 0.5
    assert base.get("latency", "p99_warn_us") == 1000.0
    # Untouched defaults survive the merge.
    assert base.get("faults", "retransmit_rate_crit") == 0.75
    fig11 = resolve_slo(data, "fig11")
    assert fig11.get("credits", "stall_rate_warn") == 0.9
    assert fig11.get("latency", "p99_warn_us") == 1000.0


def test_slo_per_verb_latency_override():
    data = {"checks": {"latency": {
        "p99_warn_us": 5000.0,
        "verbs": {"COMMIT": {"p99_warn_us": 100.0}},
    }}}
    slo = resolve_slo(data, "fig5")
    assert slo.verb("COMMIT", "p99_warn_us") == 100.0
    assert slo.verb("READ", "p99_warn_us") == 5000.0


def test_slo_file_toml_and_json(tmp_path):
    toml = tmp_path / "s.toml"
    toml.write_text('[checks.credits]\nstall_rate_warn = 0.125\n')
    assert load_slo_file(str(toml))["checks"]["credits"][
        "stall_rate_warn"] == 0.125
    js = tmp_path / "s.json"
    js.write_text(json.dumps(
        {"checks": {"credits": {"stall_rate_warn": 0.25}}}))
    assert load_slo_file(str(js))["checks"]["credits"][
        "stall_rate_warn"] == 0.25


def test_committed_quick_slo_parses():
    slo = resolve_slo(load_slo_file("slo/quick.toml"), "fig11",
                      source="slo/quick.toml")
    assert slo.verb("COMMIT", "p99_crit_us") == 50_000.0
    assert slo.get("dispatcher", "queue_peak_warn_frac") == 1.1
    # fig5 keeps the default dispatcher threshold.
    fig5 = resolve_slo(load_slo_file("slo/quick.toml"), "fig5")
    assert fig5.get("dispatcher", "queue_peak_warn_frac") == 0.8


# ------------------------------------------------------ per-check grading
def _hca_reg(hcas=2, qp_errors=0.0, rnr=0.0):
    return synth(
        scalars={"hca_qps_error": qp_errors, "hca_rnr_events": rnr},
        labeled={"hca_qps": [({"node": f"n{i}"}, 2.0) for i in range(hcas)]})


def test_check_hca_ok_warn_critical():
    assert grade("hca", _hca_reg(), nodes=2).status is Status.OK
    r = grade("hca", _hca_reg(qp_errors=1.0), nodes=2)
    assert r.status is Status.WARN
    assert r.evidence["qp_errors"] == 1.0
    missing = grade("hca", _hca_reg(hcas=1), nodes=2)
    assert missing.status is Status.CRITICAL
    assert "expected 2" in missing.message
    crit = grade("hca", _hca_reg(qp_errors=3.0),
                 slo_data={"checks": {"hca": {"qp_errors_crit": 3}}},
                 nodes=2)
    assert crit.status is Status.CRITICAL


def _srq_reg(min_avail=10.0, wm_hits=0.0, exhaustions=0.0):
    return synth(scalars={
        "srq_entries": 64.0, "srq_available": 60.0,
        "srq_min_available": min_avail, "srq_low_watermark": 8.0,
        "srq_low_watermark_hits": wm_hits, "srq_exhaustions": exhaustions,
        "srq_takes": 100.0, "srq_recycles": 100.0,
        "srq_registered_bytes": 65536.0})


def test_check_srq_ok_warn_critical():
    assert grade("srq", synth()).status is Status.OK       # not configured
    assert grade("srq", _srq_reg()).status is Status.OK
    assert grade("srq", _srq_reg(wm_hits=1.0)).status is Status.WARN
    assert grade("srq", _srq_reg(exhaustions=2.0)).status is Status.WARN
    assert grade("srq", _srq_reg(min_avail=0.0)).status is Status.CRITICAL
    crit = grade("srq", _srq_reg(exhaustions=5.0),
                 slo_data={"checks": {"srq": {"exhaustions_crit": 5}}})
    assert crit.status is Status.CRITICAL


def _credit_reg(waits, calls=100.0):
    return synth(scalars={"rpc_calls_sent": calls},
                 labeled={"rpc_credit_waits": [({"mount": "c0"}, waits)]})


def test_check_credits_boundaries():
    assert grade("credits", _credit_reg(0.0)).status is Status.OK
    assert grade("credits", _credit_reg(24.0)).status is Status.OK  # 24% < 25%
    assert grade("credits", _credit_reg(25.0)).status is Status.WARN
    crit = grade("credits", _credit_reg(60.0),
                 slo_data={"checks": {"credits": {"stall_rate_crit": 0.5}}})
    assert crit.status is Status.CRITICAL


def test_check_drc_missing_and_coverage():
    # No DRC, no retransmits: fine.
    assert grade("drc", synth()).status is Status.OK
    # Retransmits with no DRC: WARN by default, CRITICAL if configured.
    missing = grade("drc", synth(scalars={"rpc_retransmits": 3.0}))
    assert missing.status is Status.WARN
    crit = grade("drc", synth(scalars={"rpc_retransmits": 3.0}),
                 slo_data={"checks": {"drc": {
                     "missing_with_retransmits": "CRITICAL"}}})
    assert crit.status is Status.CRITICAL
    # Coverage floor: 1 hit over 10 retransmits < 50%.
    low = grade("drc", synth(scalars={
        "rpc_retransmits": 10.0, "drc_inserts": 50.0,
        "drc_replays": 1.0, "drc_drops": 0.0}),
        slo_data={"checks": {"drc": {"min_hit_rate": 0.5}}})
    assert low.status is Status.WARN
    assert low.evidence["hit_rate"] == pytest.approx(0.1)


def test_check_registration_fmr_and_faults():
    ok = grade("registration", synth(scalars={"fmr_maps": 1000.0}))
    assert ok.status is Status.OK
    warn = grade("registration", synth(scalars={
        "fmr_maps": 1000.0, "fmr_fallbacks": 10.0}))     # 1% >= 1%
    assert warn.status is Status.WARN
    crit = grade("registration", synth(scalars={
        "fmr_maps": 100.0, "fmr_fallbacks": 25.0}))      # 25% >= 25%
    assert crit.status is Status.CRITICAL
    faults = grade("registration",
                   synth(scalars={"tpt_protection_faults": 1.0}))
    assert faults.status is Status.WARN
    cache = grade("registration", synth(scalars={
        "regcache_hits": 10.0, "regcache_misses": 90.0}),
        slo_data={"checks": {"registration": {
            "regcache_min_hit_rate": 0.5}}})
    assert cache.status is Status.WARN


def test_check_dispatcher_peak_waits_failures():
    ok = grade("dispatcher", synth(scalars={"rpc_queue_peak": 10.0}),
               queue_depth=64)
    assert ok.status is Status.OK
    hot = grade("dispatcher", synth(scalars={"rpc_queue_peak": 52.0}),
                queue_depth=64)                          # 52 >= 0.8*64
    assert hot.status is Status.WARN
    # Unbounded queue: the frac rule is inert.
    unbounded = grade("dispatcher", synth(scalars={"rpc_queue_peak": 999.0}))
    assert unbounded.status is Status.OK
    waits = grade("dispatcher", synth(scalars={"rpc_queue_waits": 1.0}))
    assert waits.status is Status.WARN
    failed = grade("dispatcher", synth(scalars={"rpc_server_failed": 1.0}))
    assert failed.status is Status.CRITICAL


def test_check_latency_per_verb_grading():
    reg = synth(latency={"READ": [100.0, 200.0], "COMMIT": [20.0]})
    assert grade("latency", reg).status is Status.OK     # no limits set
    warn = grade("latency", reg, slo_data={"checks": {"latency": {
        "p99_warn_us": 150.0}}})
    assert warn.status is Status.WARN
    assert "READ" in warn.message
    # Per-verb override exempts COMMIT's tight base limit.
    mixed = grade("latency", reg, slo_data={"checks": {"latency": {
        "p99_warn_us": 10.0,
        "verbs": {"READ": {"p99_warn_us": 1000.0},
                  "COMMIT": {"p99_warn_us": 1000.0}}}}})
    assert mixed.status is Status.OK
    crit = grade("latency", reg, slo_data={"checks": {"latency": {
        "p99_crit_us": 150.0}}})
    assert crit.status is Status.CRITICAL


def test_check_security_escalations():
    assert grade("security", synth()).status is Status.OK  # not configured
    base = {"security_naks": 5.0}
    assert grade("security", synth(scalars=base)).status is Status.OK
    warned = grade("security", synth(scalars={**base,
                                              "security_warnings": 1.0}))
    assert warned.status is Status.WARN
    quarantined = grade("security", synth(scalars={
        **base, "security_quarantined_mounts": 1.0}),
        slo_data={"checks": {"security": {"quarantined_crit": 1}}})
    assert quarantined.status is Status.CRITICAL
    exposure = grade("security", synth(scalars={
        **base, "security_exposure_bytes": 1 << 20}),
        slo_data={"checks": {"security": {"exposure_bytes_warn": 1 << 20}}})
    assert exposure.status is Status.WARN


def test_check_faults_redials_and_storms():
    assert grade("faults", synth()).status is Status.OK
    redial = grade("faults", synth(scalars={"rpc_reconnects": 1.0}))
    assert redial.status is Status.WARN
    storm = grade("faults", synth(scalars={
        "rpc_calls_sent": 100.0, "rpc_retransmits": 80.0}))
    assert storm.status is Status.CRITICAL               # 80% >= 75%
    mild = grade("faults", synth(scalars={
        "rpc_calls_sent": 100.0, "rpc_retransmits": 5.0}))
    assert mild.status is Status.WARN                    # 5% >= 5%
    crash = grade("faults", synth(scalars={"faults_server_crashes": 1.0}))
    assert crash.status is Status.WARN


# ---------------------------------------------------- registry gauge wiring
def test_new_health_gauges_attach_on_real_cluster():
    """The gauges the checks read exist on a telemetry-enabled cluster."""
    from repro.experiments import Cluster, ClusterConfig
    from repro.workloads import IozoneParams, run_iozone

    c = Cluster(ClusterConfig(transport="rdma-rw", srq=True, nclients=2,
                              seed=2007, telemetry=True))
    run_iozone(c, IozoneParams(nthreads=2, ops_per_thread=4))
    reg = c.telemetry.registry
    for name in ("srq_recycles", "srq_low_watermark",
                 "srq_low_watermark_hits", "srq_reclaimed_on_detach",
                 "rpc_credit_waits", "rpc_credit_outstanding_peak",
                 "hca_qps", "hca_qps_error"):
        assert reg.get(name) is not None, name
    qps = {labels["node"]: child.value
           for labels, child in reg.get("hca_qps").items()}
    assert len(qps) == 3 and all(v >= 1 for v in qps.values())
    assert sum(ch.value for _, ch in reg.get("srq_recycles").items()) > 0
    # Peak concurrency was recorded on every mount.
    peaks = [ch.value for _, ch in
             reg.get("rpc_credit_outstanding_peak").items()]
    assert len(peaks) == 2 and all(p >= 1 for p in peaks)


# ------------------------------------------------------------- end to end
def test_run_health_fig5_point_ok_and_sinks():
    report = run_health("fig5", scale="quick", slo_path="slo/quick.toml",
                        point=0)
    assert report.exit_code == 0
    assert len(report.points) == 1
    assert {r.check for r in report.points[0].results} == set(CHECKS)

    text = render_stdout(report)
    assert "fig5/quick: OK" in text
    payload = json.loads(render_json(report))
    assert payload["exit_code"] == 0
    assert payload["slo_source"] == "slo/quick.toml"
    point = payload["points"][0]
    # The JSON sink embeds the full stats_dict registry dump.
    assert "READ" in point["stats"]["verbs"]
    assert any(s["name"] == "rpc_calls_sent" for s in
               point["stats"]["samples"])
    otel = render_otel(report)
    assert "repro.health.status{" in otel
    # Simulated timestamps only: every line ends with the point's sim_us.
    assert all(line.split()[-1].isdigit()
               for line in otel.strip().splitlines())


def test_run_health_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_health("fig99")


def test_chaos_crash_gates(tmp_path):
    # Defaults: an injected crash plus chaos-killed QPs is at least WARN.
    report = run_health("chaos", scale="quick", crashes=1)
    assert report.exit_code >= 1
    failing = {r.check for _, r in report.failing()}
    assert "faults" in failing
    # Soak invariants still held and ride along as their own verdict.
    soak = [r for r in report.points[0].results if r.check == "soak"]
    assert soak and soak[0].status is Status.OK

    # Tightened SLO: the same crash count is CRITICAL, exit 2, and the
    # report names the failing check.
    slo = tmp_path / "tight.json"
    slo.write_text(json.dumps(
        {"checks": {"faults": {"crashes_crit": 1}}}))
    strict = run_health("chaos", scale="quick", crashes=1,
                        slo_path=str(slo))
    assert strict.exit_code == 2
    names = {r.check for _, r in strict.failing()
             if r.status is Status.CRITICAL}
    assert "faults" in names
    assert "crash-restarts" in render_stdout(strict)
