"""Unit tests for FMR pools and the all-physical (global stag) mode."""

import pytest

from repro.ib.fmr import FMRExhausted, FMRPool, FMRTooLarge
from repro.ib.memory import (
    PAGE_SIZE,
    AccessFlags,
    MemoryArena,
    ProtectionError,
    RegistrationCosts,
    TranslationProtectionTable,
)
from repro.ib.phys import GLOBAL_STAG, PhysicalAccessMap
from repro.osmodel import CPU, CPUConfig
from repro.sim import DeterministicRNG, Simulator


def make_env(costs=None):
    sim = Simulator()
    cpu = CPU(sim, CPUConfig(cores=2))
    tpt = TranslationProtectionTable(
        sim, cpu, costs or RegistrationCosts(), DeterministicRNG(11, "f")
    )
    return sim, cpu, tpt, MemoryArena()


# ---------------------------------------------------------------- FMR
def test_fmr_map_produces_usable_mr():
    sim, cpu, tpt, arena = make_env()
    pool = FMRPool(tpt, pool_size=4)
    buf = arena.alloc(PAGE_SIZE)

    def proc():
        mr = yield from pool.map(buf, AccessFlags.REMOTE_WRITE)
        return mr

    mr = sim.run_until_complete(sim.process(proc()))
    assert mr.is_fmr and mr.valid
    assert tpt.lookup(mr.stag, mr.addr, 1, AccessFlags.REMOTE_WRITE) is mr


def test_fmr_map_cheaper_than_register():
    costs = RegistrationCosts(
        pin_cpu_per_page_us=0.0,
        reg_tpt_base_us=10.0, reg_tpt_per_page_us=8.0,
        fmr_map_base_us=2.0, fmr_map_per_page_us=3.0,
    )
    sim, cpu, tpt, arena = make_env(costs)
    pool = FMRPool(tpt, pool_size=4)
    buf = arena.alloc(4 * PAGE_SIZE)

    def proc():
        t0 = sim.now
        yield from pool.map(buf, AccessFlags.REMOTE_WRITE)
        fmr_cost = sim.now - t0
        t0 = sim.now
        yield from tpt.register(arena.alloc(4 * PAGE_SIZE), AccessFlags.REMOTE_WRITE)
        reg_cost = sim.now - t0
        return fmr_cost, reg_cost

    fmr_cost, reg_cost = sim.run_until_complete(sim.process(proc()))
    assert fmr_cost == pytest.approx(2.0 + 4 * 3.0)
    assert reg_cost == pytest.approx(10.0 + 4 * 8.0)
    assert fmr_cost < reg_cost


def test_fmr_unmap_returns_stag_to_pool():
    sim, cpu, tpt, arena = make_env()
    pool = FMRPool(tpt, pool_size=1)
    buf = arena.alloc(PAGE_SIZE)

    def proc():
        mr = yield from pool.map(buf, AccessFlags.REMOTE_READ)
        stag = mr.stag
        yield from pool.unmap(mr)
        mr2 = yield from pool.map(buf, AccessFlags.REMOTE_READ)
        return stag, mr2

    stag, mr2 = sim.run_until_complete(sim.process(proc()))
    assert mr2.stag == stag  # same pre-allocated entry recycled
    assert pool.available == 0


def test_fmr_stale_stag_rejected_after_unmap():
    sim, cpu, tpt, arena = make_env()
    pool = FMRPool(tpt, pool_size=2)
    buf = arena.alloc(PAGE_SIZE)

    def proc():
        mr = yield from pool.map(buf, AccessFlags.REMOTE_READ)
        yield from pool.unmap(mr)
        return mr

    mr = sim.run_until_complete(sim.process(proc()))
    with pytest.raises(ProtectionError):
        tpt.lookup(mr.stag, mr.addr, 1, AccessFlags.REMOTE_READ)


def test_fmr_pool_exhaustion():
    sim, cpu, tpt, arena = make_env()
    pool = FMRPool(tpt, pool_size=1)

    def proc():
        yield from pool.map(arena.alloc(PAGE_SIZE), AccessFlags.REMOTE_READ)
        try:
            yield from pool.map(arena.alloc(PAGE_SIZE), AccessFlags.REMOTE_READ)
        except FMRExhausted:
            return "exhausted"
        return "unexpected"

    assert sim.run_until_complete(sim.process(proc())) == "exhausted"


def test_fmr_too_large_falls_back():
    sim, cpu, tpt, arena = make_env()
    pool = FMRPool(tpt, pool_size=4, max_bytes=64 * 1024)
    big = arena.alloc(128 * 1024)

    def proc():
        try:
            yield from pool.map(big, AccessFlags.REMOTE_READ)
        except FMRTooLarge:
            return "too-large"
        return "unexpected"

    assert sim.run_until_complete(sim.process(proc())) == "too-large"
    assert pool.fallbacks.events == 1


def test_fmr_validation():
    sim, cpu, tpt, arena = make_env()
    with pytest.raises(ValueError):
        FMRPool(tpt, pool_size=0)
    with pytest.raises(ValueError):
        FMRPool(tpt, pool_size=1, max_bytes=0)


# ---------------------------------------------------------------- physical
def test_phys_disabled_rejects_global_stag():
    arena = MemoryArena()
    phys = PhysicalAccessMap(arena, DeterministicRNG(3, "p"), enabled=False)
    buf = arena.alloc(PAGE_SIZE)
    with pytest.raises(ProtectionError):
        phys.resolve(buf.addr, 10)
    assert phys.rejections.events == 1


def test_phys_enabled_resolves():
    arena = MemoryArena()
    phys = PhysicalAccessMap(arena, DeterministicRNG(3, "p"), enabled=True)
    buf = arena.alloc(PAGE_SIZE)
    found, off = phys.resolve(buf.addr + 8, 10)
    assert found is buf and off == 8
    assert phys.accesses.events == 1


def test_phys_enabled_still_bounds_checks():
    arena = MemoryArena()
    phys = PhysicalAccessMap(arena, DeterministicRNG(3, "p"), enabled=True)
    buf = arena.alloc(PAGE_SIZE)
    with pytest.raises(ProtectionError):
        phys.resolve(buf.addr + PAGE_SIZE + 100, 10)


def test_chunk_runs_cover_range_exactly():
    arena = MemoryArena()
    phys = PhysicalAccessMap(
        arena, DeterministicRNG(3, "p"), enabled=True, mean_contig_run_bytes=16 * 1024
    )
    runs = list(phys.chunk_runs(0x1000_0000, 128 * 1024))
    assert sum(length for _, length in runs) == 128 * 1024
    assert runs[0][0] == 0x1000_0000
    for (a1, l1), (a2, _) in zip(runs, runs[1:]):
        assert a1 + l1 == a2  # contiguous virtual coverage
    assert len(runs) > 1  # 128 KB fragments into multiple physical runs


def test_chunk_runs_deterministic():
    arena = MemoryArena()
    phys = PhysicalAccessMap(arena, DeterministicRNG(3, "p"), enabled=True)
    a = list(phys.chunk_runs(0x2000, 64 * 1024))
    b = list(phys.chunk_runs(0x2000, 64 * 1024))
    assert a == b


def test_chunk_runs_more_fragments_than_virtual():
    """All-physical mode yields more chunks than one virtually-contiguous
    segment — the mechanism behind Fig 9b's write degradation."""
    arena = MemoryArena()
    phys = PhysicalAccessMap(
        arena, DeterministicRNG(3, "p"), enabled=True, mean_contig_run_bytes=8 * 1024
    )
    runs = list(phys.chunk_runs(0, 256 * 1024))
    assert len(runs) >= 8


def test_global_stag_constant():
    assert GLOBAL_STAG == 0xFFFF_FFFF
