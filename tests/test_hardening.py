"""Hardened-data-plane tests: leases, quotas, quarantine, AES, campaigns.

Complements ``test_security.py`` (the raw §4.1 attacks): here every
attack runs against a server with the PR-6 mitigations toggled on, and
the assertions are about the *defense* — bounded pinning, admission
control, escalation to quarantine, and the analytic stag-guess bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.readread import ReadReadServer
from repro.experiments import Cluster, ClusterConfig
from repro.nfs import NfsClient
from repro.security import (
    CampaignParams,
    DoneWithholdingClient,
    StagGuessingAdversary,
    audit_server_exposure,
    run_campaign,
    stag_guess_success_probability,
)
from repro.workloads import IozoneParams, run_iozone

RECORD = 128 * 1024


def _withholder_cluster(**knobs):
    """An RR cluster plus a DONE-withholding mount wired through the
    cluster's own hardened transport factory (leases/quota/policy)."""
    c = Cluster(ClusterConfig(transport="rdma-rr", **knobs))
    qc, qs = c.fabric.connect(c.mounts[0].node, c.server_node)
    withholder = DoneWithholdingClient(
        c.mounts[0].node, qc, c.rpcrdma, c.mounts[0].transport.strategy)
    server = c._make_server_transport(qs)
    withholder.peer_ready = server.ready
    nfs = NfsClient(withholder, c.nfs_server.root_handle())
    return c, nfs, withholder, server


def _withhold_eight(c, nfs):
    def attack():
        fh, _ = yield from nfs.create(nfs.root, "pinned")
        yield from nfs.write(fh, 0, bytes(1 << 20))
        for i in range(8):
            yield from nfs.read(fh, i * RECORD, RECORD)

    c.run(attack())


# ---------------------------------------------------------------- analytic bound
def test_uniform_guess_hits_match_analytic_bound():
    """Empirical uniform-guess hit count is consistent with the
    ``exposed / 2^32`` analytic probability: zero hits over any
    realistic number of attempts."""
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = c.mounts[0]

    def traffic():
        nfs = mount.nfs
        fh, _ = yield from nfs.create(nfs.root, "victim")
        yield from nfs.write(fh, 0, bytes(512 * 1024))
        for i in range(4):
            yield from nfs.read(fh, i * RECORD, RECORD)

    c.run(traffic())
    exposed = len(c.server_node.hca.tpt.stags_exposed_ever)
    assert exposed >= 4
    p = stag_guess_success_probability(exposed)
    assert p == exposed / 2**32

    def qp_factory():
        qc, _qs = c.fabric.connect(mount.node, c.server_node)
        return qc

    adversary = StagGuessingAdversary(mount.node, qp_factory, seed=11)
    guesses = 200
    faults_before = c.server_node.hca.tpt.protection_faults.events
    c.run(adversary.run(guesses=guesses))
    # Expected hits = guesses * p ~ 2e-8: a single observed hit would be
    # a >1e7-sigma event, i.e. a randomization bug.
    assert guesses * p < 1e-6
    assert adversary.successes.events == 0
    assert (c.server_node.hca.tpt.protection_faults.events
            - faults_before) >= guesses


# ---------------------------------------------------------------- leases
def test_withheld_pins_unbounded_without_leases():
    c, nfs, withholder, server = _withholder_cluster()
    _withhold_eight(c, nfs)
    c.sim.run(until=c.sim.now + 200_000.0)
    # No deadline: all eight windows stay pinned forever.
    assert withholder.dones_suppressed.events == 8
    assert server.pending_done_count == 8
    assert server.lease_reclaims.events == 0


def test_leases_reclaim_withheld_pins():
    c, nfs, withholder, server = _withholder_cluster(lease_timeout_us=5_000.0)
    _withhold_eight(c, nfs)
    c.sim.run(until=c.sim.now + 200_000.0)
    assert withholder.dones_suppressed.events == 8
    # Every withheld window was reclaimed at its lease deadline.
    assert server.pending_done_count == 0
    assert server.lease_reclaims.events == 8
    assert server.lease_reclaims.value == 8 * RECORD
    # The policy saw the reclaims (misbehavior signal) and the TPT holds
    # no remote exposure.
    assert c.security_policy is not None
    assert c.security_policy.lease_reclaims.value == 8 * RECORD
    report = audit_server_exposure(c.server_node, c.server_transports)
    assert report["exposed_regions_now"] == 0


# ---------------------------------------------------------------- quotas
def test_quota_caps_pinned_exposure():
    quota = 2 * RECORD
    c, nfs, withholder, server = _withholder_cluster(
        exposure_quota_bytes=quota)
    _withhold_eight(c, nfs)
    report = audit_server_exposure(c.server_node, [server])
    assert report["pending_done_bytes"] <= quota
    # Six of the eight windows were evicted by admission control.
    assert server.quota_evictions.events >= 6
    assert c.security_policy.quota_evictions.value >= 6 * RECORD


# ---------------------------------------------------------------- AES payloads
def test_aes_payload_charges_crypt_on_both_ends():
    plain = Cluster(ClusterConfig(transport="rdma-rr"))
    aes = Cluster(ClusterConfig(transport="rdma-rr", aes_payload=True))
    r_plain = run_iozone(plain, IozoneParams(nthreads=1, ops_per_thread=8))
    r_aes = run_iozone(aes, IozoneParams(nthreads=1, ops_per_thread=8))
    assert plain.server_node.cpu.crypt_bytes.value == 0
    # Both ends pay per byte moved; the work shows up as throughput loss.
    assert aes.server_node.cpu.crypt_bytes.value > 0
    assert aes.client_nodes[0].cpu.crypt_bytes.value > 0
    assert r_aes.read_mb_s < r_plain.read_mb_s


# ---------------------------------------------------------------- SRQ audit
def test_exposure_audit_counts_shared_recv_pool_once():
    c = Cluster(ClusterConfig(transport="rdma-rr", srq=True, nclients=4))
    run_iozone(c, IozoneParams(nthreads=1, ops_per_thread=4))
    report = audit_server_exposure(c.server_node, c.server_transports)
    # One shared pool attributed once — not once per transport.
    assert report["recv_shared_pools"] == 1
    assert report["recv_registered_bytes"] == c.server_recv_buffer_bytes()
    assert report["recv_registered_bytes"] == c.srq.registered_bytes


def test_exposure_audit_sums_per_connection_rings():
    c = Cluster(ClusterConfig(transport="rdma-rr", nclients=4))
    run_iozone(c, IozoneParams(nthreads=1, ops_per_thread=4))
    report = audit_server_exposure(c.server_node, c.server_transports)
    assert report["recv_shared_pools"] == 0
    assert report["recv_registered_bytes"] == c.server_recv_buffer_bytes()
    assert report["recv_registered_bytes"] > 0


# ---------------------------------------------------------------- quarantine
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_quarantine_evicts_flooder_not_victims(seed):
    """Property over adversary seeds: a flooding mount always ends up
    quarantined while the legitimate mounts keep full service."""
    c = Cluster(ClusterConfig(transport="rdma-rr", quarantine=True))
    result = run_campaign(c, CampaignParams(
        duration_us=15_000.0, adversaries=("flood",), seed=seed))
    assert result.quarantined >= 1
    assert c.security_policy.is_banned("malfl")
    # Victims were never evicted and kept reading throughout.
    for mount in c.mounts:
        assert not getattr(mount.transport, "failed", False)
        assert not c.security_policy.is_banned(mount.node.name)
    assert result.legit_ops > 0


# ---------------------------------------------------------------- campaign acceptance
def test_campaign_rr_acceptance():
    """The fig12 acceptance story at campaign level: unmitigated RR
    pinning grows unbounded; leases+quota bound it below the cap while
    legitimate throughput stays within 10% of the attack-free run."""
    # Full-figure duration: long enough that the fixed-size attacks (and
    # the pre-quarantine damage window) are small next to the measured
    # steady state — the regime the within-10% criterion is about.
    duration = 120_000.0
    quota = 4 * RECORD

    baseline = run_campaign(
        Cluster(ClusterConfig(transport="rdma-rr")),
        CampaignParams(duration_us=duration, adversaries=()))
    unmitigated = run_campaign(
        Cluster(ClusterConfig(transport="rdma-rr")),
        CampaignParams(duration_us=duration))
    hardened = run_campaign(
        Cluster(ClusterConfig(transport="rdma-rr", lease_timeout_us=5_000.0,
                              exposure_quota_bytes=quota, quarantine=True)),
        CampaignParams(duration_us=duration))

    # Unmitigated: the withholder's pins survive the whole campaign.
    assert unmitigated.pinned_final_bytes >= 4 * RECORD
    # Hardened: peak exposure bounded by quota (+ the one in-flight
    # window admission control always lets through); at the end nothing
    # is pinned beyond at most one window whose DONE is still in flight.
    assert hardened.pinned_peak_bytes <= quota + RECORD
    assert hardened.pinned_final_bytes <= RECORD
    assert hardened.lease_reclaimed_bytes + hardened.quota_evicted_bytes > 0
    # Victim throughput: within 10% of attack-free.
    assert hardened.legit_read_mb_s >= 0.9 * baseline.legit_read_mb_s


def test_campaign_rw_immune():
    """Against Read-Write the same campaign has nothing to attack:
    no pins, no exposed stags to hit, no replayable windows."""
    result = run_campaign(
        Cluster(ClusterConfig(transport="rdma-rw")),
        CampaignParams(duration_us=15_000.0))
    assert result.pinned_final_bytes == 0
    assert result.pinned_peak_bytes == 0
    assert result.guess_hits == 0
    assert result.replay_hits == 0
    assert result.legit_ops > 0


# ---------------------------------------------------------------- sanitized flood
def test_flood_under_sanitizer_yields_typed_naks_only():
    """Attack traffic is NAKed with typed causes; none of it escapes as
    a sanitizer violation (adversarial WRs are NAKs by design, not
    simulation bugs)."""
    c = Cluster(ClusterConfig(transport="rdma-rr", sanitizer=True))
    result = run_campaign(c, CampaignParams(
        duration_us=15_000.0, adversaries=("flood", "guess")))
    assert result.protection_naks > 0
    causes = {cause for cause, n in
              c.server_node.hca.tpt.faults_by_cause.items() if n}
    assert causes and causes <= {"stag", "access", "bounds"}
    assert "stag" in causes
    assert c.sim.sanitizer.violations == []


def test_hardening_knobs_validated():
    with pytest.raises(ValueError):
        ClusterConfig(transport="tcp-ipoib", lease_timeout_us=5_000.0)
    with pytest.raises(ValueError):
        ClusterConfig(transport="rdma-rr", lease_timeout_us=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(transport="rdma-rr", exposure_quota_bytes=-1)
    with pytest.raises(ValueError):
        CampaignParams(adversaries=("withhold", "zerg"))


def test_mitigations_off_by_default():
    """Hardening knobs default off: no policy object, no lease timers,
    no quota checks — the inertness the golden figures pin."""
    c = Cluster(ClusterConfig(transport="rdma-rr"))
    assert c.security_policy is None
    assert c.rpcrdma.lease_timeout_us is None
    assert c.rpcrdma.exposure_quota_bytes is None
    assert not c.rpcrdma.aes_payload
