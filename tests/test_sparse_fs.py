"""SparseFile semantics: page-granular holes, growth and truncation.

The oracle is a plain bytearray driven through the same operations —
the sparse store must be observationally identical while keeping
``resident_bytes`` proportional to data actually written.
"""

import pytest

from repro.fs.sparse import SparseFile
from repro.payload import Payload


def _bytes(data) -> bytes:
    return data.tobytes() if isinstance(data, Payload) else bytes(data)


def test_empty_file_reads_nothing():
    f = SparseFile(page_bytes=64)
    assert len(f) == 0
    assert _bytes(f.read(0, 100)) == b""
    assert f.resident_bytes == 0


def test_holes_read_as_zeros():
    f = SparseFile(page_bytes=64)
    f.write(1000, b"DATA")
    assert len(f) == 1004
    got = _bytes(f.read(0, 1004))
    assert got == bytes(1000) + b"DATA"
    # Only the one touched page holds real bytes.
    assert f.resident_bytes <= 64


def test_write_past_eof_grows_with_implicit_zero_gap():
    f = SparseFile(page_bytes=32)
    f.write(0, b"start")
    f.write(100, b"end")
    assert len(f) == 103
    blob = _bytes(f.read(0, 103))
    assert blob[:5] == b"start"
    assert blob[5:100] == bytes(95)
    assert blob[100:] == b"end"


def test_overwrite_within_page():
    f = SparseFile(page_bytes=16)
    f.write(0, b"A" * 16)
    f.write(4, b"BB")
    assert _bytes(f.read(0, 16)) == b"AAAABBAAAAAAAAAA"


def test_write_spanning_pages_matches_oracle():
    f = SparseFile(page_bytes=16)
    oracle = bytearray(200)
    for offset, chunk in [(3, b"x" * 40), (90, b"y" * 50), (10, b"z" * 7),
                          (150, b"w" * 50), (0, b"Q")]:
        f.write(offset, chunk)
        end = offset + len(chunk)
        if end > len(oracle):
            oracle.extend(bytes(end - len(oracle)))
        oracle[offset:end] = chunk
    assert len(f) == len(oracle)
    assert _bytes(f.read(0, len(f))) == bytes(oracle)


def test_read_clamps_to_size():
    f = SparseFile(page_bytes=16)
    f.write(0, b"abc")
    assert _bytes(f.read(1, 100)) == b"bc"
    assert _bytes(f.read(3, 10)) == b""
    assert _bytes(f.read(50, 10)) == b""


def test_truncate_up_is_zero_fill_without_residency():
    f = SparseFile(page_bytes=64)
    f.write(0, b"data")
    before = f.resident_bytes
    f.truncate(1 << 20)
    assert len(f) == 1 << 20
    assert f.resident_bytes == before      # growth allocates nothing
    assert _bytes(f.read(1 << 19, 8)) == bytes(8)


def test_truncate_down_drops_pages_and_clips_boundary():
    f = SparseFile(page_bytes=16)
    f.write(0, b"A" * 64)
    assert f.resident_pages == 4
    f.truncate(20)
    assert len(f) == 20
    assert f.resident_pages <= 2
    assert _bytes(f.read(0, 20)) == b"A" * 20
    # Growing back re-reads zeros, not the clipped residue.
    f.truncate(64)
    assert _bytes(f.read(0, 64)) == b"A" * 20 + bytes(44)


def test_truncate_to_zero_clears_everything():
    f = SparseFile(page_bytes=16)
    f.write(0, b"B" * 100)
    f.truncate(0)
    assert len(f) == 0
    assert f.resident_bytes == 0


def test_zero_writes_do_not_take_residency():
    f = SparseFile(page_bytes=64)
    f.write(0, Payload.zeros(64 * 100))
    assert len(f) == 6400
    assert f.resident_bytes == 0
    assert _bytes(f.read(0, 6400)) == bytes(6400)


def test_payload_tile_write_stays_virtual():
    pattern = bytes(range(1, 17))
    f = SparseFile(page_bytes=64)
    f.write(0, Payload.tile(pattern, 640))
    assert f.resident_bytes == 0           # descriptors, not bytes
    assert _bytes(f.read(0, 640)) == pattern * 40


def test_sparse_giant_file_is_cheap():
    f = SparseFile()
    f.write(10 << 30, b"tail")            # 10 GiB offset
    assert len(f) == (10 << 30) + 4
    assert f.resident_bytes <= f.page_bytes
    assert _bytes(f.read((10 << 30) - 2, 6)) == bytes(2) + b"tail"


def test_clear():
    f = SparseFile(page_bytes=16)
    f.write(0, b"data")
    f.clear()
    assert len(f) == 0
    assert f.resident_bytes == 0


def test_negative_offset_rejected():
    f = SparseFile()
    with pytest.raises(ValueError):
        f.write(-1, b"x")
